//! End-to-end smoke test: the CI load-generation profile over real TCP.
//!
//! Runs the same profile `ppuf_loadgen --smoke` uses — a small device,
//! 2 verifier workers, 100 requests across honest, impostor, and garbage
//! cohorts — and asserts the service-level guarantees: honest traffic
//! accepted, simulating attackers rejected on the deadline, malformed
//! payloads answered with structured errors, repeated answers served
//! from the verification cache, and nothing panicking anywhere.

use ppuf_server::loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};

#[test]
fn loadgen_smoke_profile_end_to_end() {
    let config = LoadgenConfig::smoke();
    assert_eq!(config.total_requests(), 100);
    assert_eq!(config.workers, 2);

    let report = run_loadgen(&config).expect("loadgen run failed to start");

    // the one-call invariant check the CI smoke step also relies on
    report.check_smoke_invariants().expect("smoke invariants violated");

    // and the individual guarantees, spelled out
    assert_eq!(report.total_requests, 100);
    assert_eq!(report.honest.requests, 60);
    assert_eq!(report.honest.accepted, 60, "{:?}", report.honest);
    assert_eq!(report.impostor.requests, 20);
    assert_eq!(report.impostor.rejected_deadline, 20, "{:?}", report.impostor);
    assert_eq!(report.garbage.requests, 20);
    assert_eq!(report.garbage.structured_errors, 20, "{:?}", report.garbage);

    // the verification cache must have absorbed repeated answers: the
    // challenge pool rotates 4 challenges, so among 80 verified answers
    // at most a handful can miss
    let hits = report.server_counters.get("server.cache.hits").copied().unwrap_or(0);
    let misses = report.server_counters.get("server.cache.misses").copied().unwrap_or(0);
    assert!(hits > 0, "no cache hits: counters = {:?}", report.server_counters);
    assert!(hits + misses >= 80, "every verified answer passes through the cache");

    // server-side accounting matches the client-side view
    assert_eq!(report.server_counters.get("server.answers.accepted").copied(), Some(60));
    assert_eq!(report.server_counters.get("server.answers.rejected").copied(), Some(20));
    assert_eq!(report.server_counters.get("server.answers.rejected_deadline").copied(), Some(20));
    // each garbage client's 10-round rotation hits the two frame-level
    // malformed variants 6 times (i % 4 ∈ {0, 1} for i in 0..10)
    assert_eq!(report.server_counters.get("server.requests.malformed").copied(), Some(12));
    assert!(report.server_warnings.is_empty(), "{:?}", report.server_warnings);

    // latency percentiles exist and are ordered
    let latency = report.honest.latency.expect("honest latency recorded");
    assert!(latency.count == 60);
    assert!(latency.p50 <= latency.p95 && latency.p95 <= latency.p99);
    assert!(latency.min <= latency.p50 && latency.p99 <= latency.max);

    // the percentiles come from the bounded histogram riding along in
    // the report, so summary and snapshot must agree exactly
    let hist = report.honest.latency_hist.clone().expect("honest latency histogram recorded");
    assert_eq!(hist.count, 60);
    assert_eq!(hist.quantile(0.5), Some(latency.p50));
    assert_eq!(hist.quantile(0.95), Some(latency.p95));
    assert_eq!(hist.quantile(0.99), Some(latency.p99));
    assert!(report.garbage.latency_hist.is_none(), "garbage rounds record no latency");

    // the service must end the smoke run healthy, with all three SLO
    // verdicts present and the matching gauge exposed on the scrape
    assert_eq!(report.health.status, ppuf_server::HealthStatus::Ok, "{:?}", report.health);
    assert_eq!(report.health.slos.len(), 3);
    assert_eq!(report.prometheus_samples.get("ppuf_slo_health").copied(), Some(0.0));

    // every verdict round carried an echoed trace id, and the server-side
    // span trees correlate end to end under those ids
    assert_eq!(report.traced_requests, 80, "honest + impostor verdict rounds");
    assert!(report.correlated_traces >= 1, "{:?}", report.correlated_traces);

    // the live Prometheus scrape exposed the headline serving metrics
    for metric in
        ["ppuf_cache_hits_total", "ppuf_pool_queue_depth", "ppuf_dc_warm_start_hits_total"]
    {
        assert!(report.prometheus_samples.contains_key(metric), "missing {metric}");
    }
    assert!(report.prometheus_samples["ppuf_cache_hits_total"] >= hits as f64);
    // zero-filled cache/warm-start counters always appear in the report
    for key in ["server.cache.evictions", "analog.dc.warm_start_misses"] {
        assert!(report.server_counters.contains_key(key), "missing {key}");
    }

    // the JSON report round-trips
    let json = report.to_json();
    let parsed: LoadgenReport = serde_json::from_str(&json).expect("report JSON parses back");
    assert_eq!(parsed, report);
    assert!(json.contains("throughput_rps"));
}
