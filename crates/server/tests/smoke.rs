//! End-to-end smoke test: the CI load-generation profile over real TCP.
//!
//! Runs the same profile `ppuf_loadgen --smoke` uses — a small device,
//! 2 verifier workers, 100 requests across honest, impostor, and garbage
//! cohorts — and asserts the service-level guarantees: honest traffic
//! accepted, simulating attackers rejected on the deadline, malformed
//! payloads answered with structured errors, repeated answers served
//! from the verification cache, and nothing panicking anywhere.

use ppuf_server::loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};

#[test]
fn loadgen_smoke_profile_end_to_end() {
    let config = LoadgenConfig::smoke();
    assert_eq!(config.total_requests(), 100);
    assert_eq!(config.workers, 2);

    let report = run_loadgen(&config).expect("loadgen run failed to start");

    // the one-call invariant check the CI smoke step also relies on
    report.check_smoke_invariants().expect("smoke invariants violated");

    // and the individual guarantees, spelled out
    assert_eq!(report.total_requests, 100);
    assert_eq!(report.honest.requests, 60);
    assert_eq!(report.honest.accepted, 60, "{:?}", report.honest);
    assert_eq!(report.impostor.requests, 20);
    assert_eq!(report.impostor.rejected_deadline, 20, "{:?}", report.impostor);
    assert_eq!(report.garbage.requests, 20);
    assert_eq!(report.garbage.structured_errors, 20, "{:?}", report.garbage);

    // the verification cache must have absorbed repeated answers: the
    // challenge pool rotates 4 challenges, so among 80 verified answers
    // at most a handful can miss
    let hits = report.server_counters.get("server.cache.hits").copied().unwrap_or(0);
    let misses = report.server_counters.get("server.cache.misses").copied().unwrap_or(0);
    assert!(hits > 0, "no cache hits: counters = {:?}", report.server_counters);
    assert!(hits + misses >= 80, "every verified answer passes through the cache");

    // server-side accounting matches the client-side view
    assert_eq!(report.server_counters.get("server.answers.accepted").copied(), Some(60));
    assert_eq!(report.server_counters.get("server.answers.rejected").copied(), Some(20));
    assert_eq!(report.server_counters.get("server.answers.rejected_deadline").copied(), Some(20));
    // each garbage client's 10-round rotation hits the two frame-level
    // malformed variants 6 times (i % 4 ∈ {0, 1} for i in 0..10)
    assert_eq!(report.server_counters.get("server.requests.malformed").copied(), Some(12));
    assert!(report.server_warnings.is_empty(), "{:?}", report.server_warnings);

    // latency percentiles exist and are ordered
    let latency = report.honest.latency.expect("honest latency recorded");
    assert!(latency.count == 60);
    assert!(latency.p50_ms <= latency.p95_ms && latency.p95_ms <= latency.p99_ms);
    assert!(latency.min_ms <= latency.p50_ms && latency.p99_ms <= latency.max_ms);

    // the JSON report round-trips
    let json = report.to_json();
    let parsed: LoadgenReport = serde_json::from_str(&json).expect("report JSON parses back");
    assert_eq!(parsed, report);
    assert!(json.contains("throughput_rps"));
}
