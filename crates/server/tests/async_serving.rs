//! Live tests of the async serving tier: wire-1.x byte compatibility,
//! pipelined correlation, negotiation, slow-loris reaping, connection
//! caps, and the end-to-end multiplexed smoke on both wires.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppuf_analog::units::Seconds;
use ppuf_core::device::{Ppuf, PpufConfig};
use ppuf_server::loadgen::{run_async_loadgen, AsyncLoadgenConfig};
use ppuf_server::mux::WireFlavor;
use ppuf_server::service::{ServiceConfig, VerificationService};
use ppuf_server::tcp::{Client, PpufServer};
use ppuf_server::wire::{Request, Response};
use ppuf_server::wire2::{self, opcode};
use ppuf_server::{AsyncConfig, AsyncServer};

const SEED: u64 = 23;

fn service(seed: u64) -> Arc<VerificationService> {
    Arc::new(VerificationService::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        deadline: Some(Seconds(5.0)),
        challenge_pool: 2,
        seed,
        ..ServiceConfig::default()
    }))
}

fn bind_async(config: AsyncConfig) -> AsyncServer {
    AsyncServer::bind("127.0.0.1:0", service(SEED), config).expect("async bind")
}

/// Registers the standard test device over the JSON compat path.
fn register_device(addr: SocketAddr) -> Ppuf {
    let ppuf = Ppuf::generate(PpufConfig::paper(8, 2), SEED).expect("device generation");
    let model = ppuf.public_model().expect("model publication");
    let mut client = Client::connect(addr).expect("connect");
    match client.request(&Request::Register { device_id: "dev".into(), model }).expect("register") {
        Response::Registered { .. } => ppuf,
        other => panic!("registration rejected: {other:?}"),
    }
}

/// Reads one length-prefixed JSON frame as raw bytes.
fn read_json_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).expect("frame length");
    let len = u32::from_be_bytes(prefix) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("frame payload");
    let mut frame = prefix.to_vec();
    frame.extend_from_slice(&payload);
    frame
}

/// Sends pre-framed bytes and returns the raw response frame.
fn raw_json_exchange(stream: &mut TcpStream, frame: &[u8]) -> Vec<u8> {
    stream.write_all(frame).expect("write frame");
    read_json_frame(stream)
}

fn json_frame_of(request: &Request) -> Vec<u8> {
    let mut frame = Vec::new();
    ppuf_server::wire::send_message(&mut frame, request).expect("encode");
    frame
}

fn raw_frame_of(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::new();
    ppuf_server::wire::write_frame(&mut frame, payload).expect("encode");
    frame
}

/// The wire-1.x lock: a blocking client must receive byte-identical
/// response frames from the legacy thread-per-connection server and the
/// async reactor, across bare requests, malformed payloads, and the
/// trace envelope.
#[test]
fn wire_1x_responses_are_byte_identical_to_the_legacy_server() {
    let mut legacy = PpufServer::bind("127.0.0.1:0", service(SEED)).expect("legacy bind");
    let reactor = bind_async(AsyncConfig::default());

    let exchanges: Vec<Vec<u8>> = vec![
        json_frame_of(&Request::Ping),
        json_frame_of(&Request::GetChallenge { device_id: "no-such-device".into() }),
        raw_frame_of(b"\x7bnot json at all"),
        raw_frame_of(b"{\"Bogus\": {\"x\": 1}}"),
        // wire-1.1 envelope: the response must come back enveloped
        raw_frame_of(br#"{"trace_id": 7, "body": "Ping"}"#),
        json_frame_of(&Request::Ping),
    ];

    let against = |addr: SocketAddr| -> Vec<Vec<u8>> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        exchanges.iter().map(|frame| raw_json_exchange(&mut stream, frame)).collect()
    };
    let from_legacy = against(legacy.local_addr());
    let from_reactor = against(reactor.local_addr());
    for (i, (a, b)) in from_legacy.iter().zip(&from_reactor).enumerate() {
        assert_eq!(
            a,
            b,
            "exchange {i}: legacy {:?} vs reactor {:?}",
            String::from_utf8_lossy(a),
            String::from_utf8_lossy(b)
        );
    }
    legacy.shutdown();
}

/// Pipelined binary requests complete out of order but every response
/// carries the correlation id of its request.
#[test]
fn binary_pipelining_echoes_correlation_ids() {
    let server = bind_async(AsyncConfig::default());
    register_device(server.local_addr());

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // three challenges pipelined back to back in one write
    let mut burst = Vec::new();
    for corr in [11u64, 22, 33] {
        burst.extend_from_slice(&wire2::encode_request(
            corr,
            &Request::GetChallenge { device_id: "dev".into() },
        ));
    }
    stream.write_all(&burst).expect("write burst");

    let mut seen = Vec::new();
    for _ in 0..3 {
        let frame = wire2::read_frame2(&mut stream).expect("read").expect("frame");
        assert_eq!(frame.opcode, opcode::CHALLENGE);
        let response = wire2::decode_response(&frame).expect("decode");
        assert!(matches!(response, Response::Challenge { .. }), "{response:?}");
        seen.push(frame.corr);
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![11, 22, 33]);
}

/// JSON responses come back in request order even though the dispatch
/// pool completes them concurrently — the wire-1.x ordering contract.
#[test]
fn json_pipelined_responses_stay_in_request_order() {
    let server = bind_async(AsyncConfig::default());
    register_device(server.local_addr());

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut burst = json_frame_of(&Request::GetChallenge { device_id: "dev".into() });
    burst.extend_from_slice(&json_frame_of(&Request::Ping));
    burst.extend_from_slice(&json_frame_of(&Request::GetChallenge {
        device_id: "no-such-device".into(),
    }));
    stream.write_all(&burst).expect("write burst");

    let expectations: [&dyn Fn(&Response) -> bool; 3] =
        [&|r| matches!(r, Response::Challenge { .. }), &|r| matches!(r, Response::Pong), &|r| {
            matches!(r, Response::Error { .. })
        }];
    for (i, expect) in expectations.iter().enumerate() {
        let frame = read_json_frame(&mut stream);
        let text = std::str::from_utf8(&frame[4..]).expect("utf8");
        let response: Response = serde_json::from_str(text).expect("decode");
        assert!(expect(&response), "response {i} out of order: {response:?}");
    }
}

/// A first byte that is neither JSON's length prefix nor the wire-2.0
/// magic closes the connection without a response.
#[test]
fn garbage_first_bytes_close_the_connection() {
    let server = bind_async(AsyncConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    let mut buf = [0u8; 64];
    assert_eq!(stream.read(&mut buf).expect("read"), 0, "expected EOF, got data");
    // the reactor accounted the close: nothing left open
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().open() != 0 {
        assert!(Instant::now() < deadline, "connection still counted open");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().accepted(), 1);
}

/// A half-written frame trips the read deadline: the slow-loris is
/// reaped and the open-connections gauge decrements.
#[test]
fn slow_loris_half_frame_is_reaped_and_gauge_decrements() {
    let server = bind_async(AsyncConfig {
        read_deadline: Duration::from_millis(200),
        sweep_interval: Duration::from_millis(50),
        ..AsyncConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    // claim a 64-byte JSON frame, deliver only 3 bytes, then stall
    stream.write_all(&64u32.to_be_bytes()).expect("write prefix");
    stream.write_all(b"{\"G").expect("write stub");

    let gauge = |stats: &ppuf_server::conn::TransportStats, name: &str| -> f64 {
        stats.gauges().into_iter().find(|(n, _)| n == name).map(|(_, v)| v).unwrap_or(f64::NAN)
    };
    // the connection shows up open ...
    let deadline = Instant::now() + Duration::from_secs(5);
    while gauge(server.stats(), "ppuf_conn_open") < 1.0 {
        assert!(Instant::now() < deadline, "connection never counted open");
        std::thread::sleep(Duration::from_millis(5));
    }
    // ... and the sweep reaps it without us sending another byte
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).expect("read"), 0, "expected EOF after reap");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server.stats();
        if stats.reaped() == 1 && gauge(stats, "ppuf_conn_open") == 0.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reap not accounted: reaped={} open={}",
            stats.reaped(),
            gauge(stats, "ppuf_conn_open")
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A peer that pipelines requests but never reads responses is closed
/// once its buffered-response backlog passes the write cap — the write
/// buffer cannot grow without bound.
#[test]
fn write_backlog_past_the_cap_closes_the_connection() {
    let server = bind_async(AsyncConfig {
        max_write_buf: 256,
        sweep_interval: Duration::from_millis(50),
        ..AsyncConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // never read: pipeline pings until the unread responses fill the
    // kernel buffers, trip the cap, and the server closes on us (seen as
    // a write error once the reset lands)
    let burst: Vec<u8> = (0..64).flat_map(|i| wire2::encode_request(i, &Request::Ping)).collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "backlogged connection never closed");
        if stream.write_all(&burst).is_err() {
            break;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().open() != 0 {
        assert!(Instant::now() < deadline, "connection still counted open");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().reaped(), 1);
}

/// Accepts beyond the connection cap are shed immediately; the cap
/// protects the event loop's slab and file descriptors.
#[test]
fn connection_cap_sheds_excess_accepts() {
    let server = bind_async(AsyncConfig { max_connections: 2, ..AsyncConfig::default() });
    let addr = server.local_addr();
    let mut keep = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        // prove the connection is live: a ping answers
        stream.write_all(&json_frame_of(&Request::Ping)).expect("write");
        let frame = read_json_frame(&mut stream);
        assert!(std::str::from_utf8(&frame[4..]).expect("utf8").contains("Pong"));
        keep.push(stream);
    }
    let mut third = TcpStream::connect(addr).expect("connect");
    third.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut buf = [0u8; 16];
    assert_eq!(third.read(&mut buf).expect("read"), 0, "expected EOF past the cap");
    assert_eq!(server.stats().rejected(), 1);
    assert_eq!(server.stats().open(), 2);
}

/// A binary frame trickled one byte at a time still parses and answers —
/// the incremental parser holds state across arbitrarily torn reads.
#[test]
fn torn_binary_frame_over_live_socket_still_answers() {
    let server = bind_async(AsyncConfig::default());
    register_device(server.local_addr());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    let frame = wire2::encode_request(99, &Request::GetChallenge { device_id: "dev".into() });
    for byte in &frame {
        stream.write_all(std::slice::from_ref(byte)).expect("write byte");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let response = wire2::read_frame2(&mut stream).expect("read").expect("frame");
    assert_eq!(response.corr, 99);
    assert_eq!(response.opcode, opcode::CHALLENGE);
}

/// The reactor attributes its loop time into the service profiler:
/// after serving traffic, `server.reactor;*` phase paths are present
/// with self times bounded by the loop's wall time.
#[test]
fn reactor_phase_times_reach_the_service_profiler() {
    let service = service(SEED);
    let mut server = AsyncServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        AsyncConfig { sweep_interval: Duration::from_millis(25), ..AsyncConfig::default() },
    )
    .expect("async bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stream.write_all(&json_frame_of(&Request::Ping)).expect("write");
    let frame = read_json_frame(&mut stream);
    assert!(std::str::from_utf8(&frame[4..]).expect("utf8").contains("Pong"));
    drop(stream);
    // teardown flushes the partial accumulators, so the snapshot is
    // complete without waiting out a sweep interval
    server.shutdown();

    let profile = service.profiler().snapshot();
    let root = profile.get("server.reactor").expect("reactor root path");
    assert!(root.wall_s > 0.0, "reactor wall time recorded");
    for phase in ["poll_wait", "accept", "parse", "dispatch", "write"] {
        let stats = profile
            .get(&format!("server.reactor;{phase}"))
            .unwrap_or_else(|| panic!("missing reactor phase {phase}"));
        assert!(stats.self_s <= root.wall_s + 1e-9, "{phase} self time exceeds loop wall");
    }
}

fn small_async_profile(wire: WireFlavor) -> AsyncLoadgenConfig {
    AsyncLoadgenConfig {
        label: format!("async-it-{wire:?}"),
        honest_connections: 12,
        impostor_connections: 2,
        garbage_connections: 2,
        pipeline: 2,
        rounds_per_stream: 1,
        deadline_s: 2.0,
        wire,
        ..AsyncLoadgenConfig::default()
    }
}

/// End-to-end multiplexed smoke on the binary wire: all cohorts over one
/// event-loop client, correlation ids echoed on every response.
#[test]
fn async_loadgen_smoke_binary_wire() {
    let report =
        run_async_loadgen(&small_async_profile(WireFlavor::Binary)).expect("async loadgen");
    report.check_smoke_invariants().expect("async smoke invariants");
    assert_eq!(report.total_rounds, 32);
    assert!(report.mux.corr_echoed > 0);
    assert_eq!(report.mux.corr_echoed, report.mux.responses);
}

/// The same cohorts over wire-1.x JSON: pipelining works with in-order
/// response matching and no correlation ids.
#[test]
fn async_loadgen_smoke_json_wire() {
    let report = run_async_loadgen(&small_async_profile(WireFlavor::Json)).expect("async loadgen");
    report.check_smoke_invariants().expect("async smoke invariants");
    assert_eq!(report.total_rounds, 32);
    assert_eq!(report.mux.corr_echoed, 0, "JSON wire has no correlation ids");
}
