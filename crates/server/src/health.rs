//! SLO health surface: sliding-window service-level objectives.
//!
//! The service keeps a [`HealthTracker`] — a ring of coarse time buckets
//! over the last [`SloConfig::window_s`] seconds — and classifies every
//! finished request into a [`RequestOutcome`]. [`HealthTracker::assess`]
//! folds the live window into a [`HealthReport`]: one [`SloVerdict`] per
//! objective (request latency p99, overload rate, honest-cohort reject
//! rate) plus the overall worst-of status. The report backs the
//! `Request::Health` admin command and the `ppuf_slo_*` Prometheus
//! gauges, and its window totals drive the flight-recorder triggers.
//!
//! Design notes:
//!
//! - Buckets are keyed by *epoch* (`floor(now / bucket_width)`), so stale
//!   slots are recycled lazily on the next write or read — no background
//!   sweeper thread.
//! - Latencies go into a bounded [`LogHistogram`] per bucket; assessing a
//!   window merges at most [`SloConfig::buckets`] histograms, so both
//!   recording and assessment are fixed-memory.
//! - Deadline rejections are *not* an SLO failure: a verifier turning
//!   away late (impostor-shaped) answers is the protocol working. Only
//!   flow-mismatch rejections count against the reject-rate objective.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use ppuf_telemetry::LogHistogram;

/// Thresholds and window geometry for the SLO surface.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Sliding-window length in seconds.
    pub window_s: f64,
    /// Number of time buckets the window is split into; more buckets
    /// means a smoother roll-off as old traffic ages out.
    pub buckets: usize,
    /// Latency p99 (seconds) at or above which the service is degraded.
    pub latency_p99_degraded_s: f64,
    /// Latency p99 (seconds) at or above which the service is unhealthy.
    pub latency_p99_unhealthy_s: f64,
    /// Overloaded-response fraction at or above which → degraded.
    pub overload_degraded: f64,
    /// Overloaded-response fraction at or above which → unhealthy.
    pub overload_unhealthy: f64,
    /// Flow-reject fraction (of decided answers) at or above which →
    /// degraded.
    pub reject_degraded: f64,
    /// Flow-reject fraction (of decided answers) at or above which →
    /// unhealthy.
    pub reject_unhealthy: f64,
    /// Below this many requests in the window every verdict reads `Ok` —
    /// a cold service has no statistics worth alerting on.
    pub min_requests: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window_s: 60.0,
            buckets: 12,
            latency_p99_degraded_s: 0.25,
            latency_p99_unhealthy_s: 1.0,
            overload_degraded: 0.05,
            overload_unhealthy: 0.25,
            reject_degraded: 0.10,
            reject_unhealthy: 0.50,
            min_requests: 20,
        }
    }
}

impl SloConfig {
    fn bucket_width_s(&self) -> f64 {
        self.window_s / self.buckets.max(1) as f64
    }
}

/// How one finished request counts against the SLOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Answer verified and accepted.
    Accepted,
    /// Answer decided and rejected on flow mismatch — the signal the
    /// reject-rate SLO watches.
    RejectedFlow,
    /// Answer rejected for missing its deadline; protocol working as
    /// intended, not an SLO failure.
    RejectedDeadline,
    /// Request turned away with `Overloaded`.
    Overloaded,
    /// Request failed inside the server.
    InternalError,
    /// Anything else (challenge issuance, pings, admin, client errors).
    Other,
}

/// Overall or per-objective health classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthStatus {
    /// All objectives within budget.
    Ok,
    /// At least one objective past its degraded threshold.
    Degraded,
    /// At least one objective past its unhealthy threshold.
    Unhealthy,
}

impl HealthStatus {
    /// Gauge encoding for Prometheus: `Ok` = 0, `Degraded` = 1,
    /// `Unhealthy` = 2.
    pub fn as_gauge(self) -> f64 {
        match self {
            HealthStatus::Ok => 0.0,
            HealthStatus::Degraded => 1.0,
            HealthStatus::Unhealthy => 2.0,
        }
    }

    fn classify(value: f64, degraded_at: f64, unhealthy_at: f64) -> Self {
        if value >= unhealthy_at {
            HealthStatus::Unhealthy
        } else if value >= degraded_at {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        }
    }
}

/// One objective's measured value against its thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// Objective name (`latency_p99_seconds`, `overload_ratio`,
    /// `reject_ratio`).
    pub slo: String,
    /// This objective's classification.
    pub status: HealthStatus,
    /// Measured value over the window.
    pub value: f64,
    /// Degraded threshold the value is compared against.
    pub degraded_at: f64,
    /// Unhealthy threshold the value is compared against.
    pub unhealthy_at: f64,
}

/// The full health surface: worst-of status plus per-objective verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Worst classification across all objectives.
    pub status: HealthStatus,
    /// Window length the verdicts were computed over, seconds.
    pub window_s: f64,
    /// Requests observed in the window.
    pub requests: u64,
    /// One verdict per objective.
    pub slos: Vec<SloVerdict>,
}

impl HealthReport {
    /// Looks up one objective's verdict by name.
    pub fn slo(&self, name: &str) -> Option<&SloVerdict> {
        self.slos.iter().find(|v| v.slo == name)
    }
}

/// Raw window counts, for flight-recorder trigger logic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowTotals {
    /// All requests in the window.
    pub requests: u64,
    /// `Overloaded` responses.
    pub overloaded: u64,
    /// Accepted answers.
    pub accepted: u64,
    /// Flow-mismatch rejections.
    pub rejected_flow: u64,
    /// Deadline rejections.
    pub rejected_deadline: u64,
    /// Internal server errors.
    pub internal_errors: u64,
}

/// One time slice of the sliding window.
#[derive(Debug)]
struct TimeBucket {
    /// Epoch this slot currently belongs to; a mismatched epoch means
    /// the slot is stale and is recycled before use.
    epoch: u64,
    totals: WindowTotals,
    latency: LogHistogram,
}

impl TimeBucket {
    fn fresh(epoch: u64) -> Self {
        TimeBucket { epoch, totals: WindowTotals::default(), latency: LogHistogram::new() }
    }
}

/// Sliding-window SLO tracker; interior-mutable and thread-safe.
#[derive(Debug)]
pub struct HealthTracker {
    config: SloConfig,
    ring: Mutex<Vec<TimeBucket>>,
}

impl HealthTracker {
    /// Builds a tracker with all window slots empty at epoch 0.
    pub fn new(config: SloConfig) -> Self {
        let buckets = config.buckets.max(1);
        let ring = (0..buckets).map(|_| TimeBucket::fresh(0)).collect();
        HealthTracker { config, ring: Mutex::new(ring) }
    }

    /// The configuration this tracker classifies against.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    fn epoch(&self, now_s: f64) -> u64 {
        (now_s.max(0.0) / self.config.bucket_width_s()).floor() as u64
    }

    /// Records one finished request at `now_s` (clock seconds) with the
    /// observed wall latency.
    pub fn record(&self, now_s: f64, latency_s: f64, outcome: RequestOutcome) {
        let epoch = self.epoch(now_s);
        let mut ring = self.lock();
        let slots = ring.len();
        let bucket = &mut ring[(epoch as usize) % slots];
        if bucket.epoch != epoch {
            *bucket = TimeBucket::fresh(epoch);
        }
        bucket.totals.requests += 1;
        bucket.latency.record(latency_s);
        match outcome {
            RequestOutcome::Accepted => bucket.totals.accepted += 1,
            RequestOutcome::RejectedFlow => bucket.totals.rejected_flow += 1,
            RequestOutcome::RejectedDeadline => bucket.totals.rejected_deadline += 1,
            RequestOutcome::Overloaded => bucket.totals.overloaded += 1,
            RequestOutcome::InternalError => bucket.totals.internal_errors += 1,
            RequestOutcome::Other => {}
        }
    }

    /// Sums the live slots of the window ending at `now_s` — counts only,
    /// no histogram merge, so trigger checks on the hot path stay cheap.
    pub fn window_totals(&self, now_s: f64) -> WindowTotals {
        let newest = self.epoch(now_s);
        let ring = self.lock();
        let oldest = newest.saturating_sub(ring.len() as u64 - 1);
        let mut totals = WindowTotals::default();
        for bucket in ring.iter().filter(|b| b.epoch >= oldest && b.epoch <= newest) {
            totals.requests += bucket.totals.requests;
            totals.overloaded += bucket.totals.overloaded;
            totals.accepted += bucket.totals.accepted;
            totals.rejected_flow += bucket.totals.rejected_flow;
            totals.rejected_deadline += bucket.totals.rejected_deadline;
            totals.internal_errors += bucket.totals.internal_errors;
        }
        totals
    }

    /// Classifies the window ending at `now_s` into a [`HealthReport`].
    pub fn assess(&self, now_s: f64) -> HealthReport {
        let (totals, latency) = self.fold_window(now_s);
        let enough = totals.requests >= self.config.min_requests;

        let p99 = latency.quantile(0.99).unwrap_or(0.0);
        let overload_ratio = ratio(totals.overloaded, totals.requests);
        let decided = totals.accepted + totals.rejected_flow;
        let reject_ratio = ratio(totals.rejected_flow, decided);

        let slos = vec![
            verdict(
                "latency_p99_seconds",
                p99,
                self.config.latency_p99_degraded_s,
                self.config.latency_p99_unhealthy_s,
                enough,
            ),
            verdict(
                "overload_ratio",
                overload_ratio,
                self.config.overload_degraded,
                self.config.overload_unhealthy,
                enough,
            ),
            verdict(
                "reject_ratio",
                reject_ratio,
                self.config.reject_degraded,
                self.config.reject_unhealthy,
                enough,
            ),
        ];
        let status = slos.iter().map(|v| v.status).max().unwrap_or(HealthStatus::Ok);
        HealthReport { status, window_s: self.config.window_s, requests: totals.requests, slos }
    }

    fn fold_window(&self, now_s: f64) -> (WindowTotals, LogHistogram) {
        let newest = self.epoch(now_s);
        let ring = self.lock();
        let span = ring.len() as u64;
        let oldest = newest.saturating_sub(span - 1);
        let mut totals = WindowTotals::default();
        let mut latency = LogHistogram::new();
        for bucket in ring.iter() {
            if bucket.epoch < oldest || bucket.epoch > newest {
                continue; // stale slot not yet recycled
            }
            totals.requests += bucket.totals.requests;
            totals.overloaded += bucket.totals.overloaded;
            totals.accepted += bucket.totals.accepted;
            totals.rejected_flow += bucket.totals.rejected_flow;
            totals.rejected_deadline += bucket.totals.rejected_deadline;
            totals.internal_errors += bucket.totals.internal_errors;
            latency.merge(&bucket.latency);
        }
        (totals, latency)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TimeBucket>> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn verdict(
    name: &str,
    value: f64,
    degraded_at: f64,
    unhealthy_at: f64,
    enough: bool,
) -> SloVerdict {
    let status = if enough {
        HealthStatus::classify(value, degraded_at, unhealthy_at)
    } else {
        HealthStatus::Ok
    };
    SloVerdict { slo: name.to_string(), status, value, degraded_at, unhealthy_at }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SloConfig {
        SloConfig { window_s: 12.0, buckets: 6, min_requests: 10, ..SloConfig::default() }
    }

    #[test]
    fn empty_tracker_reports_ok() {
        let tracker = HealthTracker::new(quick_config());
        let report = tracker.assess(0.0);
        assert_eq!(report.status, HealthStatus::Ok);
        assert_eq!(report.requests, 0);
        assert_eq!(report.slos.len(), 3);
        assert!(report.slos.iter().all(|v| v.status == HealthStatus::Ok));
    }

    #[test]
    fn below_min_requests_never_alerts() {
        let tracker = HealthTracker::new(quick_config());
        // 9 overloads out of 9 requests would be a 100% overload ratio,
        // but the sample is below min_requests so the verdict stays Ok
        for _ in 0..9 {
            tracker.record(1.0, 0.001, RequestOutcome::Overloaded);
        }
        assert_eq!(tracker.assess(1.0).status, HealthStatus::Ok);
    }

    #[test]
    fn overload_burst_degrades_then_unhealthy() {
        let tracker = HealthTracker::new(quick_config());
        for _ in 0..90 {
            tracker.record(1.0, 0.001, RequestOutcome::Accepted);
        }
        for _ in 0..10 {
            tracker.record(1.0, 0.001, RequestOutcome::Overloaded);
        }
        // 10% overloaded: past the 5% degraded line, short of 25%
        let report = tracker.assess(1.0);
        assert_eq!(report.status, HealthStatus::Degraded);
        assert_eq!(report.slo("overload_ratio").unwrap().status, HealthStatus::Degraded);
        assert_eq!(report.slo("latency_p99_seconds").unwrap().status, HealthStatus::Ok);

        for _ in 0..40 {
            tracker.record(1.5, 0.001, RequestOutcome::Overloaded);
        }
        // now 50 / 140 ≈ 36% overloaded → unhealthy
        let report = tracker.assess(1.5);
        assert_eq!(report.status, HealthStatus::Unhealthy);
        assert!(report.slo("overload_ratio").unwrap().value > 0.25);
    }

    #[test]
    fn reject_rate_counts_flow_mismatches_not_deadlines() {
        let tracker = HealthTracker::new(quick_config());
        for _ in 0..50 {
            tracker.record(2.0, 0.002, RequestOutcome::Accepted);
        }
        for _ in 0..50 {
            tracker.record(2.0, 0.002, RequestOutcome::RejectedDeadline);
        }
        // deadline rejections are the protocol doing its job
        assert_eq!(tracker.assess(2.0).status, HealthStatus::Ok);

        for _ in 0..20 {
            tracker.record(2.0, 0.002, RequestOutcome::RejectedFlow);
        }
        // 20 / (50 + 20) ≈ 29% of decided answers rejected → degraded
        let report = tracker.assess(2.0);
        assert_eq!(report.slo("reject_ratio").unwrap().status, HealthStatus::Degraded);
        assert_eq!(report.status, HealthStatus::Degraded);
    }

    #[test]
    fn slow_requests_trip_the_latency_objective() {
        let tracker = HealthTracker::new(quick_config());
        for _ in 0..100 {
            tracker.record(3.0, 2.0, RequestOutcome::Accepted);
        }
        let report = tracker.assess(3.0);
        assert_eq!(report.slo("latency_p99_seconds").unwrap().status, HealthStatus::Unhealthy);
        assert!(report.slo("latency_p99_seconds").unwrap().value >= 1.0);
        assert_eq!(report.status, HealthStatus::Unhealthy);
    }

    #[test]
    fn window_slides_and_old_trouble_ages_out() {
        let config = quick_config(); // 12 s window, 2 s buckets
        let tracker = HealthTracker::new(config);
        for _ in 0..100 {
            tracker.record(1.0, 0.001, RequestOutcome::Overloaded);
        }
        assert_eq!(tracker.assess(1.0).status, HealthStatus::Unhealthy);
        // 10 s later the burst is still inside the 12 s window
        assert_eq!(tracker.assess(11.0).status, HealthStatus::Unhealthy);
        // 20 s later it has aged out entirely
        let report = tracker.assess(21.0);
        assert_eq!(report.status, HealthStatus::Ok);
        assert_eq!(report.requests, 0);
    }

    #[test]
    fn window_totals_track_every_outcome_class() {
        let tracker = HealthTracker::new(quick_config());
        tracker.record(1.0, 0.001, RequestOutcome::Accepted);
        tracker.record(1.0, 0.001, RequestOutcome::RejectedFlow);
        tracker.record(1.0, 0.001, RequestOutcome::RejectedDeadline);
        tracker.record(1.0, 0.001, RequestOutcome::Overloaded);
        tracker.record(1.0, 0.001, RequestOutcome::InternalError);
        tracker.record(1.0, 0.001, RequestOutcome::Other);
        let totals = tracker.window_totals(1.0);
        assert_eq!(totals.requests, 6);
        assert_eq!(totals.accepted, 1);
        assert_eq!(totals.rejected_flow, 1);
        assert_eq!(totals.rejected_deadline, 1);
        assert_eq!(totals.overloaded, 1);
        assert_eq!(totals.internal_errors, 1);
    }

    #[test]
    fn health_report_round_trips_through_json() {
        let tracker = HealthTracker::new(quick_config());
        for _ in 0..30 {
            tracker.record(1.0, 0.01, RequestOutcome::Accepted);
        }
        let report = tracker.assess(1.0);
        let json = serde_json::to_string(&report).expect("serialize");
        let back: HealthReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn status_ordering_supports_worst_of() {
        assert!(HealthStatus::Ok < HealthStatus::Degraded);
        assert!(HealthStatus::Degraded < HealthStatus::Unhealthy);
        assert_eq!(HealthStatus::Unhealthy.as_gauge(), 2.0);
    }
}
