//! Wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every message is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON. Requests and responses are externally tagged
//! enums, e.g.
//!
//! ```text
//! → {"GetChallenge": {"device_id": "dev-0"}}
//! ← {"Challenge": {"device_id": "dev-0", "nonce": 17, "challenge": {...},
//!                  "deadline_s": 0.25}}
//! ```
//!
//! Frames are capped at [`MAX_FRAME_LEN`] so a hostile length prefix
//! cannot force a giant allocation; oversized or truncated frames and
//! unparseable payloads are *protocol* errors that the server answers
//! with a structured [`Response::Error`] instead of dropping the
//! connection.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use ppuf_core::challenge::Challenge;
use ppuf_core::protocol::auth::{ProverAnswer, VerificationReport};
use ppuf_core::public_model::PublicModel;

use crate::health::HealthReport;

/// Hard cap on a frame payload, in bytes (16 MiB — a published model for
/// a paper-scale device is well under 1 MiB).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Wire protocol major version; bumped only on incompatible changes.
pub const WIRE_VERSION_MAJOR: u32 = 1;

/// Wire protocol minor version. Minor bumps are backward compatible by
/// rule: new request kinds draw a structured [`ErrorKind::Malformed`]
/// from an older server (the connection survives), and the optional
/// [`TracedRequest`]/[`TracedResponse`] envelope degrades to the bare
/// v1.0 encoding when no `trace_id` is attached, so old and new peers
/// interoperate in both directions.
///
/// 1.1 added the `trace_id` envelope and the [`Request::Stats`] admin
/// command. 1.2 added the [`Request::Health`] SLO surface and the
/// [`Request::Dump`] flight-recorder admin command. 1.3 added the
/// [`Request::Profile`] admin command exposing the always-on hierarchical
/// profiler; every ≤1.2 message still encodes byte-identically (locked by
/// test).
pub const WIRE_VERSION_MINOR: u32 = 3;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidInput` if `payload` exceeds
/// [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds cap {MAX_FRAME_LEN}", payload.len()),
        ));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean end-of-stream
/// (EOF before any length byte).
///
/// `WouldBlock`/`TimedOut` from a polling read timeout surface only at a
/// frame boundary (no byte consumed yet, so the caller may simply retry);
/// once a frame has started, the read is retried internally — returning
/// mid-frame would desynchronize the stream.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` for a length above
/// [`MAX_FRAME_LEN`] or a stream truncated mid-frame.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    if !read_full(reader, &mut len_bytes, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_full(reader, &mut payload, false)?;
    Ok(Some(payload))
}

/// Fills `buf` completely. Returns `Ok(false)` for EOF before the first
/// byte when `start_of_frame` (clean end-of-stream); EOF anywhere else is
/// `InvalidData` (truncated frame). `WouldBlock`/`TimedOut` propagate
/// only before the first byte of a frame; later ones retry.
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8], start_of_frame: bool) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if start_of_frame && filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "stream truncated inside frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut)
                    && !(start_of_frame && filled == 0) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Publish (or replace) a device's public model.
    Register {
        /// Registry key for the device.
        device_id: String,
        /// The model every verifier check runs against.
        model: PublicModel,
    },
    /// Remove a device; its outstanding sessions die with it.
    Revoke {
        /// Registry key for the device.
        device_id: String,
    },
    /// Mint a nonce-bound challenge for a device and start its clock.
    GetChallenge {
        /// Registry key for the device.
        device_id: String,
    },
    /// Redeem a session nonce with the prover's answer.
    SubmitAnswer {
        /// Registry key for the device.
        device_id: String,
        /// The session nonce from the matching `Challenge` response.
        nonce: u64,
        /// The prover's answer (response bit plus both flow functions).
        answer: ProverAnswer,
    },
    /// Liveness probe.
    Ping,
    /// Read-only admin command: snapshot the server's live telemetry.
    Stats {
        /// Which rendering of the snapshot to return.
        format: StatsFormat,
    },
    /// Read-only admin command: assess the sliding-window SLOs.
    Health,
    /// Admin command: dump the flight recorder's retained traces and
    /// events to disk (and return the post-mortem inline).
    Dump,
    /// Read-only admin command (wire 1.3): snapshot the server's live
    /// call-path profile.
    Profile {
        /// Which rendering of the profile to return.
        format: ProfileFormat,
    },
}

/// Rendering of a [`Request::Profile`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileFormat {
    /// Per-path stats as a JSON object (path → count/wall/self/min/max
    /// plus allocation tallies), matching the report `profile` section.
    Json,
    /// Folded-stack text, one `path self_micros` line per call path,
    /// ready for `flamegraph.pl`.
    Folded,
}

/// Rendering of a [`Request::Stats`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatsFormat {
    /// The schema-versioned JSON report (`ppuf_telemetry::Report`).
    Json,
    /// Prometheus text exposition (`ppuf_*` metrics).
    Prometheus,
}

/// Machine-readable failure category in a [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The device id is not registered (or was revoked).
    UnknownDevice,
    /// The nonce was never issued or was already redeemed.
    ReplayOrUnknownNonce,
    /// The session outlived its time-to-live before the answer arrived.
    SessionExpired,
    /// The verification queue is full; retry after the hinted delay.
    Overloaded,
    /// The frame was not a well-formed request.
    Malformed,
    /// The server failed internally (worker died, check errored).
    Internal,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The device is registered and challengeable.
    Registered {
        /// Registry key for the device.
        device_id: String,
    },
    /// Revocation outcome.
    Revoked {
        /// Registry key for the device.
        device_id: String,
        /// Whether the device was registered before this call.
        existed: bool,
    },
    /// A minted challenge; answer it before `deadline_s` elapses.
    Challenge {
        /// Registry key for the device.
        device_id: String,
        /// Session nonce to present with the answer.
        nonce: u64,
        /// The challenge to execute.
        challenge: Challenge,
        /// Answer deadline in seconds, if the service enforces one.
        deadline_s: Option<f64>,
    },
    /// The verification verdict for a submitted answer.
    Verdict {
        /// Registry key for the device.
        device_id: String,
        /// The redeemed session nonce.
        nonce: u64,
        /// `true` iff every check (including the deadline) passed.
        accepted: bool,
        /// Per-check findings.
        report: VerificationReport,
        /// Whether the flow checks were served from the verification
        /// cache (the deadline check never is).
        cached: bool,
        /// Measured seconds between challenge issue and answer arrival.
        elapsed_s: f64,
    },
    /// A structured failure.
    Error {
        /// Failure category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
        /// For [`ErrorKind::Overloaded`]: suggested client backoff.
        retry_after_ms: Option<u64>,
    },
    /// Liveness answer.
    Pong,
    /// The telemetry snapshot answering a [`Request::Stats`].
    Stats {
        /// The format the snapshot was rendered in.
        format: StatsFormat,
        /// The rendered snapshot (JSON report or Prometheus text).
        body: String,
    },
    /// The SLO assessment answering a [`Request::Health`].
    Health {
        /// Per-objective verdicts and the worst-of overall status.
        report: HealthReport,
    },
    /// The call-path profile answering a [`Request::Profile`].
    Profile {
        /// The format the profile was rendered in.
        format: ProfileFormat,
        /// The rendered profile (JSON map or folded-stack text).
        body: String,
    },
    /// Acknowledgement of a [`Request::Dump`].
    Dumped {
        /// Where the post-mortem landed on the server's disk, if a dump
        /// directory is configured.
        path: Option<String>,
        /// Trace trees retained in the dump.
        traces: u64,
        /// Black-box events retained in the dump.
        events: u64,
    },
}

impl Response {
    /// Convenience constructor for error responses without a retry hint.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Self {
        Response::Error { kind, message: message.into(), retry_after_ms: None }
    }
}

/// Optional request-tracing envelope (wire 1.1).
///
/// With a `trace_id` the message encodes as
/// `{"trace_id": N, "body": <bare message>}`; without one it encodes as
/// the bare v1.0 message, byte-identical to pre-envelope clients. The
/// decoder keys on the presence of a `"body"` field — no bare message is
/// a map with that key (they are externally tagged enums), so both forms
/// decode unambiguously. The id 0 is reserved for "absent".
#[derive(Debug, Clone, PartialEq)]
pub struct TracedRequest {
    /// Client-chosen trace id echoed back in the response envelope.
    pub trace_id: Option<u64>,
    /// The request proper.
    pub body: Request,
}

/// Response side of the tracing envelope; see [`TracedRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct TracedResponse {
    /// The trace id the server filed this request's spans under.
    pub trace_id: Option<u64>,
    /// The response proper.
    pub body: Response,
}

macro_rules! traced_envelope {
    ($envelope:ident, $body:ty) => {
        impl $envelope {
            /// Wraps a message without tracing (encodes as bare v1.0).
            pub fn bare(body: $body) -> Self {
                $envelope { trace_id: None, body }
            }

            /// Wraps a message under a trace id (0 means "absent").
            pub fn traced(trace_id: u64, body: $body) -> Self {
                $envelope { trace_id: (trace_id != 0).then_some(trace_id), body }
            }
        }

        impl Serialize for $envelope {
            fn to_value(&self) -> serde::Value {
                match self.trace_id {
                    None => self.body.to_value(),
                    Some(id) => serde::Value::Map(vec![
                        ("trace_id".to_string(), id.to_value()),
                        ("body".to_string(), self.body.to_value()),
                    ]),
                }
            }
        }

        impl<'de> Deserialize<'de> for $envelope {
            fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
                match value.get("body") {
                    Some(body) => {
                        let trace_id = match value.get("trace_id") {
                            None | Some(serde::Value::Null) => None,
                            Some(v) => Some(u64::from_value(v)?).filter(|id| *id != 0),
                        };
                        Ok($envelope { trace_id, body: <$body>::from_value(body)? })
                    }
                    None => Ok($envelope { trace_id: None, body: <$body>::from_value(value)? }),
                }
            }
        }
    };
}

traced_envelope!(TracedRequest, Request);
traced_envelope!(TracedResponse, Response);

/// Serializes a message and writes it as one frame.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` if serialization fails.
pub fn send_message<W: Write, T: Serialize>(writer: &mut W, message: &T) -> io::Result<()> {
    let text = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(writer, text.as_bytes())
}

/// Reads one frame and parses it; `Ok(None)` on clean end-of-stream.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` for an unparseable payload.
pub fn recv_message<R: Read, T: for<'de> Deserialize<'de>>(
    reader: &mut R,
) -> io::Result<Option<T>> {
    let Some(payload) = read_frame(reader)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let parsed = serde_json::from_str(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(parsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // truncated inside the length prefix too
        let err = read_frame(&mut io::Cursor::new(vec![0u8, 0])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn requests_roundtrip_as_json() {
        let requests = [
            Request::Revoke { device_id: "d".into() },
            Request::GetChallenge { device_id: "d".into() },
            Request::Ping,
        ];
        for request in &requests {
            let text = serde_json::to_string(request).unwrap();
            let back: Request = serde_json::from_str(&text).unwrap();
            assert_eq!(&back, request);
        }
    }

    #[test]
    fn error_response_roundtrips() {
        let response = Response::Error {
            kind: ErrorKind::Overloaded,
            message: "queue full".into(),
            retry_after_ms: Some(50),
        };
        let text = serde_json::to_string(&response).unwrap();
        let back: Response = serde_json::from_str(&text).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn send_recv_roundtrip() {
        let mut buf = Vec::new();
        send_message(&mut buf, &Request::Ping).unwrap();
        let back: Option<Request> = recv_message(&mut io::Cursor::new(buf)).unwrap();
        assert_eq!(back, Some(Request::Ping));
    }

    #[test]
    fn stats_request_and_response_roundtrip() {
        for format in [StatsFormat::Json, StatsFormat::Prometheus] {
            let request = Request::Stats { format };
            let back: Request =
                serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
            assert_eq!(back, request);
        }
        let response = Response::Stats {
            format: StatsFormat::Prometheus,
            body: "# TYPE x gauge\nx 1\n".into(),
        };
        let back: Response =
            serde_json::from_str(&serde_json::to_string(&response).unwrap()).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn health_and_dump_admin_messages_roundtrip() {
        use crate::health::{HealthStatus, SloVerdict};

        for request in [Request::Health, Request::Dump] {
            let back: Request =
                serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
            assert_eq!(back, request);
        }
        let response = Response::Health {
            report: HealthReport {
                status: HealthStatus::Degraded,
                window_s: 60.0,
                requests: 120,
                slos: vec![SloVerdict {
                    slo: "overload_ratio".into(),
                    status: HealthStatus::Degraded,
                    value: 0.08,
                    degraded_at: 0.05,
                    unhealthy_at: 0.25,
                }],
            },
        };
        let back: Response =
            serde_json::from_str(&serde_json::to_string(&response).unwrap()).unwrap();
        assert_eq!(back, response);

        let response = Response::Dumped {
            path: Some("results/flightrec/burst-000001.json".into()),
            traces: 3,
            events: 9,
        };
        let back: Response =
            serde_json::from_str(&serde_json::to_string(&response).unwrap()).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn profile_admin_messages_roundtrip() {
        for format in [ProfileFormat::Json, ProfileFormat::Folded] {
            let request = Request::Profile { format };
            let back: Request =
                serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
            assert_eq!(back, request);
        }
        let response = Response::Profile {
            format: ProfileFormat::Folded,
            body: "server.request;verify 1200\n".into(),
        };
        let back: Response =
            serde_json::from_str(&serde_json::to_string(&response).unwrap()).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn wire_1_2_messages_encode_byte_identically_after_the_1_3_additions() {
        // the 1.3 compatibility rule, locked: adding Request::Profile /
        // Response::Profile must not change a single byte of any ≤1.2
        // encoding, so pre-1.3 clients and servers interoperate unchanged
        let cases: [(&str, String); 6] = [
            ("\"Ping\"", serde_json::to_string(&Request::Ping).unwrap()),
            ("\"Health\"", serde_json::to_string(&Request::Health).unwrap()),
            ("\"Dump\"", serde_json::to_string(&Request::Dump).unwrap()),
            (
                "{\"Stats\":{\"format\":\"Prometheus\"}}",
                serde_json::to_string(&Request::Stats { format: StatsFormat::Prometheus }).unwrap(),
            ),
            (
                "{\"GetChallenge\":{\"device_id\":\"d\"}}",
                serde_json::to_string(&Request::GetChallenge { device_id: "d".into() }).unwrap(),
            ),
            ("\"Pong\"", serde_json::to_string(&Response::Pong).unwrap()),
        ];
        for (expected, actual) in &cases {
            assert_eq!(actual, expected, "a ≤1.2 message changed encoding");
        }
        let response = Response::Error {
            kind: ErrorKind::Overloaded,
            message: "queue full".into(),
            retry_after_ms: Some(50),
        };
        let text = serde_json::to_string(&response).unwrap();
        assert_eq!(
            text,
            "{\"Error\":{\"kind\":\"Overloaded\",\"message\":\"queue full\",\
             \"retry_after_ms\":50}}"
        );
    }

    #[test]
    fn bare_envelope_encodes_exactly_like_the_untraced_message() {
        let request = Request::GetChallenge { device_id: "d".into() };
        let bare = TracedRequest::bare(request.clone());
        assert_eq!(serde_json::to_string(&bare).unwrap(), serde_json::to_string(&request).unwrap());
        // and a traced id of 0 degrades to bare (0 is reserved)
        let zero = TracedRequest::traced(0, request.clone());
        assert_eq!(zero, bare);
    }

    #[test]
    fn traced_envelope_roundtrips_and_decodes_bare_frames() {
        let request = Request::GetChallenge { device_id: "d".into() };
        let traced = TracedRequest::traced(0xDEADBEEF, request.clone());
        let text = serde_json::to_string(&traced).unwrap();
        assert!(text.contains("trace_id"), "{text}");
        let back: TracedRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, traced);

        // an envelope-aware decoder accepts a v1.0 bare frame unchanged
        let bare_text = serde_json::to_string(&request).unwrap();
        let back: TracedRequest = serde_json::from_str(&bare_text).unwrap();
        assert_eq!(back, TracedRequest::bare(request));

        // same on the response side
        let response = Response::Pong;
        let traced = TracedResponse::traced(7, response.clone());
        let back: TracedResponse =
            serde_json::from_str(&serde_json::to_string(&traced).unwrap()).unwrap();
        assert_eq!(back, traced);
        let back: TracedResponse =
            serde_json::from_str(&serde_json::to_string(&response).unwrap()).unwrap();
        assert_eq!(back, TracedResponse::bare(response));
    }
}
