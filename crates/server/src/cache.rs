//! Sharded cache of verification verdicts.
//!
//! The expensive part of serving an answer is the verifier's two
//! residual-graph BFS passes (the optimality certificates). When the
//! issuer rotates a finite challenge pool, many sessions present the
//! *same* (challenge, answer) pair for the same device — an honest
//! device's answer is deterministic — so the flow checks can be served
//! from cache. Only the *timeless* part of the report is stored
//! (feasibility, maximality, response consistency); the deadline check
//! depends on the individual session and is always recomputed by the
//! caller.
//!
//! Keys are `(device id, challenge fingerprint, answer fingerprint)`;
//! fingerprints are 64-bit [`SipHash`](std::collections::hash_map::DefaultHasher)
//! digests, so a false hit needs a ~2⁻⁶⁴ collision on a non-adversarial
//! hash of the full flow function. The map is split into shards, each
//! behind its own mutex, so worker threads do not serialize on one lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use ppuf_core::challenge::Challenge;
use ppuf_core::protocol::auth::{ProverAnswer, VerificationReport};

/// 64-bit digest of a challenge (terminals plus every control bit).
pub fn challenge_fingerprint(challenge: &Challenge) -> u64 {
    let mut hasher = DefaultHasher::new();
    challenge.hash(&mut hasher);
    hasher.finish()
}

/// 64-bit digest of an answer (response bit plus both full flow
/// functions, bit-exact).
pub fn answer_fingerprint(answer: &ProverAnswer) -> u64 {
    let mut hasher = DefaultHasher::new();
    answer.response.hash(&mut hasher);
    for flow in [&answer.flow_a, &answer.flow_b] {
        flow.value().to_bits().hash(&mut hasher);
        for f in flow.edge_flows() {
            f.to_bits().hash(&mut hasher);
        }
    }
    hasher.finish()
}

type CacheKey = (String, u64, u64);

/// Sharded `(device, challenge, answer) → verdict` map with bounded
/// per-shard size.
#[derive(Debug)]
pub struct VerificationCache {
    shards: Vec<Mutex<HashMap<CacheKey, VerificationReport>>>,
    shard_capacity: usize,
}

impl VerificationCache {
    /// Creates a cache with `shards` independent shards of at most
    /// `shard_capacity` entries each (both clamped to at least 1).
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        VerificationCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: shard_capacity.max(1),
        }
    }

    /// Looks up a stored verdict.
    pub fn get(
        &self,
        device_id: &str,
        challenge_fp: u64,
        answer_fp: u64,
    ) -> Option<VerificationReport> {
        let shard = self.shard(challenge_fp, answer_fp);
        let map = lock(&self.shards[shard]);
        map.get(&(device_id.to_string(), challenge_fp, answer_fp)).copied()
    }

    /// Stores a verdict. When the target shard is full its contents are
    /// discarded first — coarse, but eviction precision is irrelevant for
    /// a replay-style cache and it keeps the hot path allocation-free.
    /// Returns the number of entries evicted to make room, so callers can
    /// count `server.cache.evictions`.
    pub fn insert(
        &self,
        device_id: &str,
        challenge_fp: u64,
        answer_fp: u64,
        report: VerificationReport,
    ) -> usize {
        let shard = self.shard(challenge_fp, answer_fp);
        let mut map = lock(&self.shards[shard]);
        let mut evicted = 0;
        if map.len() >= self.shard_capacity
            && !map.contains_key(&(device_id.to_string(), challenge_fp, answer_fp))
        {
            evicted = map.len();
            map.clear();
        }
        map.insert((device_id.to_string(), challenge_fp, answer_fp), report);
        evicted
    }

    /// Drops every entry for one device (used on revocation so a
    /// re-registered id cannot inherit stale verdicts).
    pub fn invalidate_device(&self, device_id: &str) {
        for shard in &self.shards {
            lock(shard).retain(|(id, _, _), _| id != device_id);
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, challenge_fp: u64, answer_fp: u64) -> usize {
        // mix both fingerprints so shard choice is not challenge-only
        let mixed = challenge_fp ^ answer_fp.rotate_left(32);
        (mixed % self.shards.len() as u64) as usize
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppuf_core::protocol::auth::NetworkVerdict;
    use ppuf_maxflow::NodeId;

    fn challenge(bits: &[bool]) -> Challenge {
        Challenge { source: NodeId::new(0), sink: NodeId::new(1), control_bits: bits.to_vec() }
    }

    fn report(accepted: bool) -> VerificationReport {
        let verdict = NetworkVerdict { feasible: accepted, maximal: accepted };
        VerificationReport {
            network_a: verdict,
            network_b: verdict,
            response_consistent: accepted,
            within_deadline: true,
        }
    }

    #[test]
    fn hit_after_insert_per_device() {
        let cache = VerificationCache::new(4, 16);
        let cfp = challenge_fingerprint(&challenge(&[true, false]));
        let afp = 99;
        assert_eq!(cache.get("dev", cfp, afp), None);
        cache.insert("dev", cfp, afp, report(true));
        assert_eq!(cache.get("dev", cfp, afp), Some(report(true)));
        // same fingerprints, different device: miss
        assert_eq!(cache.get("other", cfp, afp), None);
    }

    #[test]
    fn distinct_challenges_have_distinct_fingerprints() {
        let a = challenge_fingerprint(&challenge(&[true, false, true]));
        let b = challenge_fingerprint(&challenge(&[true, true, true]));
        assert_ne!(a, b);
    }

    #[test]
    fn full_shard_is_recycled_not_grown() {
        let cache = VerificationCache::new(1, 8);
        let mut evicted = 0;
        for i in 0..100u64 {
            evicted += cache.insert("dev", i, i, report(true));
        }
        assert!(cache.len() <= 8, "bounded at shard capacity, got {}", cache.len());
        // 100 inserts through a size-8 shard must have recycled it 12
        // times at 8 entries apiece
        assert_eq!(evicted, 96);
    }

    #[test]
    fn invalidate_device_is_selective() {
        let cache = VerificationCache::new(4, 16);
        cache.insert("dev-a", 1, 1, report(true));
        cache.insert("dev-b", 2, 2, report(false));
        cache.invalidate_device("dev-a");
        assert_eq!(cache.get("dev-a", 1, 1), None);
        assert_eq!(cache.get("dev-b", 2, 2), Some(report(false)));
    }

    #[test]
    fn invalidate_device_drops_exactly_that_device_across_all_shards() {
        // regression: fingerprints 0..64 land in every one of the 8
        // shards, and both devices share every fingerprint pair, so a
        // per-shard retain that matched on anything but the device id
        // would either leave dev-a leftovers or eat dev-b entries
        let cache = VerificationCache::new(8, 64);
        for i in 0..64u64 {
            cache.insert("dev-a", i, i.rotate_left(17), report(true));
            cache.insert("dev-b", i, i.rotate_left(17), report(false));
        }
        assert_eq!(cache.len(), 128);
        cache.invalidate_device("dev-a");
        assert_eq!(cache.len(), 64, "exactly dev-a's entries must go");
        for i in 0..64u64 {
            assert_eq!(cache.get("dev-a", i, i.rotate_left(17)), None);
            assert_eq!(
                cache.get("dev-b", i, i.rotate_left(17)),
                Some(report(false)),
                "dev-b entry {i} must survive dev-a's invalidation"
            );
        }
    }

    #[test]
    fn poisoned_shard_recovers() {
        // regression: a worker panicking while holding a shard lock must
        // not take the cache down with it
        let cache = VerificationCache::new(1, 16);
        cache.insert("dev", 1, 1, report(true));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock(&cache.shards[0]);
            panic!("worker died holding the shard");
        }));
        assert!(panicked.is_err());
        assert_eq!(cache.get("dev", 1, 1), Some(report(true)));
        cache.insert("dev", 2, 2, report(false));
        assert_eq!(cache.len(), 2);
    }
}
