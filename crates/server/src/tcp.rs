//! TCP front-end: the service behind `std::net`, plus a matching client.
//!
//! One accept thread (blocked on an epoll readiness poll, woken
//! instantly at shutdown through a [`Waker`] — no sleep polling), one
//! thread per connection. Connection threads poll with a
//! read timeout and re-check the shutdown flag between frames. A frame
//! that is not valid JSON — or not a valid [`Request`] — is answered
//! with a structured `Malformed` error on the same connection; only I/O
//! failures and frame-layer corruption (truncation, oversized length)
//! end the connection.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mio::{Events, Interest, Mode, Poll, Token, Waker};
use ppuf_telemetry::{next_trace_id, Recorder, TraceId};

use crate::service::VerificationService;
use crate::wire::{
    recv_message, send_message, ErrorKind, Request, Response, TracedRequest, TracedResponse,
};

const READ_POLL: Duration = Duration::from_millis(100);

const LISTENER_TOKEN: Token = Token(0);
const SHUTDOWN_TOKEN: Token = Token(1);

/// A listening PPUF verification server.
///
/// Dropping the server (or calling [`shutdown`](Self::shutdown)) stops
/// the accept loop; connection threads notice the flag at their next
/// read-timeout tick and exit.
#[derive(Debug)]
pub struct PpufServer {
    service: Arc<VerificationService>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    accept_thread: Option<JoinHandle<()>>,
}

impl PpufServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections against `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Arc<VerificationService>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poll = Poll::new()?;
        poll.register(&listener, LISTENER_TOKEN, Interest::READABLE, Mode::Level)?;
        let waker = Waker::new(&poll, SHUTDOWN_TOKEN)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("ppuf-accept".into())
                .spawn(move || accept_loop(&listener, &poll, &service, &shutdown))?
        };
        Ok(PpufServer { service, local_addr, shutdown, waker, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<VerificationService> {
        &self.service
    }

    /// Stops accepting and signals connection threads to wind down. The
    /// accept thread is woken out of its readiness poll immediately — no
    /// polling latency.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PpufServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    poll: &Poll,
    service: &Arc<VerificationService>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut events = Events::with_capacity(8);
    while !shutdown.load(Ordering::SeqCst) {
        // block until a connection is pending or the shutdown waker fires
        // — zero CPU while idle, zero latency on either edge
        if poll.poll(&mut events, None).is_err() {
            break;
        }
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let conn_service = Arc::clone(service);
                    let conn_shutdown = Arc::clone(shutdown);
                    let spawned = std::thread::Builder::new()
                        .name(format!("ppuf-conn-{peer}"))
                        .spawn(move || handle_connection(stream, &conn_service, &conn_shutdown));
                    if let Err(e) = spawned {
                        service.recorder().warn(&format!("failed to spawn connection thread: {e}"));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    service.recorder().warn(&format!("accept failed: {e}"));
                    break;
                }
            }
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: &Arc<VerificationService>,
    shutdown: &Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    service.recorder().counter_add("server.connections", 1);
    while !shutdown.load(Ordering::SeqCst) {
        let envelope: TracedRequest = match recv_message(&mut stream) {
            Ok(Some(envelope)) => envelope,
            Ok(None) => break, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll tick: re-check the shutdown flag
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // parseable frame layer, garbage payload: answer, keep going
                service.recorder().counter_add("server.requests.malformed", 1);
                let response = Response::error(ErrorKind::Malformed, e.to_string());
                if send_message(&mut stream, &response).is_err() {
                    break;
                }
                continue;
            }
            Err(_) => break, // torn connection
        };
        // adopt the client's trace id when it sent one, mint one otherwise
        // — every request runs under *some* trace id from accept onward
        let client_traced = envelope.trace_id.is_some();
        let trace = envelope.trace_id.and_then(TraceId::from_raw).unwrap_or_else(next_trace_id);
        let response = service.handle_traced(envelope.body, trace);
        // only envelope speakers get the envelope back: bare (wire 1.0)
        // clients keep receiving byte-identical bare responses
        let sent = if client_traced {
            send_message(&mut stream, &TracedResponse::traced(trace.get(), response))
        } else {
            send_message(&mut stream, &response)
        };
        if sent.is_err() {
            break;
        }
    }
}

/// Blocking client for the wire protocol; used by the load generator,
/// the example, and tests.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; `UnexpectedEof` if the server closed the
    /// connection instead of answering.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        send_message(&mut self.stream, request)?;
        self.read_response()
    }

    /// Sends one request inside a wire-1.1 trace envelope and waits for
    /// the response, returning the trace id the server echoed (`None` if
    /// it answered bare, e.g. an older server). Pass an id from
    /// [`ppuf_telemetry::next_trace_id`] to correlate the server-side span
    /// tree with this call.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn request_traced(
        &mut self,
        request: Request,
        trace_id: u64,
    ) -> io::Result<(Response, Option<u64>)> {
        send_message(&mut self.stream, &TracedRequest::traced(trace_id, request))?;
        match recv_message::<_, TracedResponse>(&mut self.stream)? {
            Some(envelope) => Ok((envelope.body, envelope.trace_id)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )),
        }
    }

    /// Sends raw bytes as one frame and waits for a response — lets
    /// attack-style clients deliver payloads that are not valid requests.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<Response> {
        crate::wire::write_frame(&mut self.stream, payload)?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        match recv_message(&mut self.stream)? {
            Some(response) => Ok(response),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )),
        }
    }
}
