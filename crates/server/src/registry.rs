//! Device registry: device ids to published models and their per-device
//! protocol state.
//!
//! Registration is interior-mutable — the registry is shared behind an
//! `Arc` by every connection thread, so insertion, lookup, and revocation
//! all take `&self` under an `RwLock`. Lookups (the hot path: every
//! challenge and every answer) take the read lock only long enough to
//! clone an `Arc<DeviceEntry>`.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use ppuf_core::protocol::auth::Verifier;
use ppuf_core::protocol::issuer::ChallengeIssuer;
use ppuf_core::public_model::PublicModel;

/// Everything the service keeps per registered device.
#[derive(Debug)]
pub struct DeviceEntry {
    /// Registry key.
    pub device_id: String,
    /// The published model, exactly as registered.
    pub model: PublicModel,
    /// Verifier over the model. Configured *without* a deadline: workers
    /// produce timeless verdicts (so they can be cached) and the service
    /// applies the deadline to the measured session time itself.
    pub verifier: Verifier,
    /// Challenge minting and replay/expiry policing for this device.
    pub issuer: ChallengeIssuer,
}

/// Concurrent map of device id → [`DeviceEntry`].
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    devices: RwLock<HashMap<String, Arc<DeviceEntry>>>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a device entry; returns the shared handle.
    ///
    /// Replacing drops the previous entry's outstanding sessions — a
    /// re-registered device starts from a clean slate.
    pub fn insert(&self, entry: DeviceEntry) -> Arc<DeviceEntry> {
        let entry = Arc::new(entry);
        self.write().insert(entry.device_id.clone(), Arc::clone(&entry));
        entry
    }

    /// Looks up a device.
    pub fn get(&self, device_id: &str) -> Option<Arc<DeviceEntry>> {
        self.read().get(device_id).cloned()
    }

    /// Revokes a device; returns whether it was registered.
    ///
    /// In-flight verifications keep their `Arc<DeviceEntry>` and finish,
    /// but no new challenge or answer is accepted for the id.
    pub fn remove(&self, device_id: &str) -> bool {
        self.write().remove(device_id).is_some()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Sorted ids of all registered devices.
    pub fn device_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<DeviceEntry>>> {
        self.devices.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<DeviceEntry>>> {
        self.devices.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppuf_core::challenge::ChallengeSpace;
    use ppuf_core::device::{Ppuf, PpufConfig};

    fn entry(device_id: &str) -> DeviceEntry {
        let ppuf = Ppuf::generate(PpufConfig::paper(6, 2), 7).unwrap();
        let model = ppuf.public_model().unwrap();
        let space = ChallengeSpace::new(model.nodes(), model.grid().grid()).unwrap();
        DeviceEntry {
            device_id: device_id.to_string(),
            model: model.clone(),
            verifier: Verifier::new(model),
            issuer: ChallengeIssuer::new(space, 1),
        }
    }

    #[test]
    fn insert_get_remove() {
        let registry = DeviceRegistry::new();
        assert!(registry.is_empty());
        registry.insert(entry("dev-a"));
        registry.insert(entry("dev-b"));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.device_ids(), vec!["dev-a".to_string(), "dev-b".to_string()]);
        assert!(registry.get("dev-a").is_some());
        assert!(registry.get("dev-c").is_none());
        assert!(registry.remove("dev-a"));
        assert!(!registry.remove("dev-a"), "second revocation finds nothing");
        assert!(registry.get("dev-a").is_none());
    }

    #[test]
    fn reinsert_replaces_and_clears_sessions() {
        let registry = DeviceRegistry::new();
        let first = registry.insert(entry("dev"));
        let issued = first.issuer.issue();
        assert_eq!(first.issuer.outstanding(), 1);
        let second = registry.insert(entry("dev"));
        assert_eq!(second.issuer.outstanding(), 0, "fresh entry, fresh sessions");
        assert!(second.issuer.redeem(issued.nonce).is_err());
    }

    #[test]
    fn lookups_share_one_entry() {
        let registry = DeviceRegistry::new();
        registry.insert(entry("dev"));
        let a = registry.get("dev").unwrap();
        let b = registry.get("dev").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
