//! Readiness-driven serving tier: one event-loop thread, thousands of
//! connections.
//!
//! [`AsyncServer`] replaces thread-per-connection scaling with a single
//! thread running an epoll event loop (the vendored [`mio`] poller). The
//! loop owns every socket: it accepts, sniffs the wire mode off each
//! connection's first byte (wire 1.x JSON vs. wire 2.0 binary — see
//! [`crate::wire2`]), parses pipelined requests, and hands each one to a
//! small **dispatch pool** over a bounded channel. Dispatch threads run
//! the blocking [`VerificationService::handle_traced`] (which itself
//! queues flow checks on the verification [`WorkerPool`](crate::pool)) and
//! post completions back; a [`Waker`] pulls the loop out of `epoll_wait`
//! to encode and flush them. Throughput therefore stays bounded by the
//! worker pool, not the I/O tier, as long as `dispatch_threads` ≥ the
//! pool's workers.
//!
//! Overload and abuse handling is explicit at every layer:
//!
//! - **connection cap** — accepts beyond [`AsyncConfig::max_connections`]
//!   are closed immediately (counted in `ppuf_conn_rejected_total`);
//! - **dispatch backpressure** — a full dispatch queue answers
//!   `Overloaded` (+ retry hint) from the event loop without blocking;
//! - **slow-loris reaping** — a frame left half-written past
//!   [`AsyncConfig::read_deadline`], or a connection idle past
//!   [`AsyncConfig::idle_timeout`], is swept and closed;
//! - **write backpressure** — a peer that pipelines requests but never
//!   reads responses is closed once its unsent backlog passes
//!   [`AsyncConfig::max_write_buf`] (write progress counts as activity,
//!   so a fully stalled writer also idles out).
//!
//! Every connection runs under its own trace id: bare requests join it
//! (so one connection's `server.request` trees share a trace), and a
//! `server.conn` root span covering the connection's lifetime is recorded
//! at close with `reason` / `requests` / `mode` attributes.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use mio::{Events, Interest, Mode, Poll, Token, Waker};
use ppuf_telemetry::{next_trace_id, record_root_interval, Recorder, TraceId};

use crate::conn::{CloseReason, Conn, Corr, Inbound, TransportStats, WireMode};
use crate::service::VerificationService;
use crate::wire::{ErrorKind, Request, Response};

const WAKER_TOKEN: Token = Token(0);
const LISTENER_TOKEN: Token = Token(1);
/// Connection slot `s` registers under `Token(s + TOKEN_BASE)`.
const TOKEN_BASE: usize = 2;

/// Tuning for an [`AsyncServer`].
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Open-connection cap; accepts beyond it are closed immediately.
    pub max_connections: usize,
    /// A connection with no request activity for this long (and nothing
    /// in flight) is reaped.
    pub idle_timeout: Duration,
    /// A frame that stays incomplete for this long is a slow-loris: the
    /// connection is reaped.
    pub read_deadline: Duration,
    /// Threads running the blocking service dispatch. Keep ≥ the worker
    /// pool's `workers` so verification stays the throughput bound.
    pub dispatch_threads: usize,
    /// Bounded dispatch queue; overflow answers `Overloaded` inline.
    pub dispatch_queue: usize,
    /// Per-connection cap on buffered, unsent response bytes: a peer
    /// that keeps pipelining requests without reading responses is
    /// closed once its backlog passes this. Soft — checked between
    /// frames, so one frame may overshoot. Keep it ≥ the largest single
    /// response (a frame is at most [`crate::wire::MAX_FRAME_LEN`]).
    pub max_write_buf: usize,
    /// Poll timeout and timeout-sweep cadence.
    pub sweep_interval: Duration,
    /// Readiness events drained per poll.
    pub events_capacity: usize,
    /// Kernel listen backlog (clamped by `net.core.somaxconn`). Must be
    /// deep enough to absorb a whole connect storm: on a single core the
    /// reactor and a bursting client timeshare the CPU, and a full
    /// accept queue quantizes connects to one backlog per 1-second SYN
    /// retransmit.
    pub listen_backlog: i32,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            max_connections: 10_000,
            idle_timeout: Duration::from_secs(60),
            read_deadline: Duration::from_secs(10),
            dispatch_threads: 4,
            dispatch_queue: 256,
            max_write_buf: 2 * crate::wire::MAX_FRAME_LEN,
            sweep_interval: Duration::from_millis(250),
            events_capacity: 1024,
            listen_backlog: 4096,
        }
    }
}

/// One request handed to the dispatch pool.
struct Job {
    slot: usize,
    gen: u64,
    corr: Corr,
    request: Request,
    trace: TraceId,
}

/// One finished request coming back from the dispatch pool.
struct Done {
    slot: usize,
    gen: u64,
    corr: Corr,
    response: Response,
}

/// Where one reactor loop iteration spends its time, accumulated locally
/// and flushed to the service [`Profiler`](ppuf_telemetry::Profiler) on
/// the sweep cadence — the hot loop never touches the profiler's shared
/// maps between flushes.
#[derive(Debug, Default)]
struct PhaseTimes {
    /// Blocked in `epoll_wait`.
    poll_wait: Duration,
    /// Accepting and registering new connections.
    accept: Duration,
    /// Reading sockets and parsing frames into requests.
    parse: Duration,
    /// Routing parsed requests to the dispatch pool and encoding
    /// completed responses back onto their connections.
    dispatch: Duration,
    /// Flushing buffered response bytes and settling write interest.
    write: Duration,
}

impl PhaseTimes {
    fn busy(&self) -> Duration {
        self.accept + self.parse + self.dispatch + self.write
    }
}

/// The async (epoll) front-end for a [`VerificationService`].
///
/// Dropping the server (or calling [`shutdown`](Self::shutdown)) wakes
/// the event loop, closes every connection, and joins all threads.
#[derive(Debug)]
pub struct AsyncServer {
    service: Arc<VerificationService>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    stats: Arc<TransportStats>,
    loop_thread: Option<JoinHandle<()>>,
    dispatch_threads: Vec<JoinHandle<()>>,
}

impl AsyncServer {
    /// Binds `addr` (port 0 for OS-assigned) and starts the event loop
    /// and dispatch pool against `service`. The service's Prometheus
    /// exposition gains the transport's `ppuf_conn_*` gauges.
    ///
    /// # Errors
    ///
    /// Propagates bind, poller-creation, and thread-spawn failures.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<VerificationService>,
        config: AsyncConfig,
    ) -> io::Result<Self> {
        let mut listener = None;
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match mio::net::listen_with_backlog(candidate, config.listen_backlog) {
                Ok(bound) => {
                    listener = Some(bound);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let listener = match listener {
            Some(listener) => listener,
            None => {
                return Err(last_err.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::AddrNotAvailable, "no resolvable listen address")
                }))
            }
        };
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poll = Poll::new()?;
        let waker = Waker::new(&poll, WAKER_TOKEN)?;
        poll.register(&listener, LISTENER_TOKEN, Interest::READABLE, Mode::Level)?;

        let stats = Arc::new(TransportStats::new());
        service.attach_transport(Arc::clone(&stats));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = channel::bounded::<Job>(config.dispatch_queue.max(1));
        let (done_tx, done_rx) = channel::unbounded::<Done>();

        let mut dispatch_threads = Vec::with_capacity(config.dispatch_threads.max(1));
        for i in 0..config.dispatch_threads.max(1) {
            let service = Arc::clone(&service);
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let waker = waker.clone();
            dispatch_threads.push(
                std::thread::Builder::new()
                    .name(format!("ppuf-dispatch-{i}"))
                    .spawn(move || dispatch_loop(&service, &job_rx, &done_tx, &waker))?,
            );
        }

        let loop_thread = {
            let reactor = Reactor {
                poll,
                listener,
                service: Arc::clone(&service),
                stats: Arc::clone(&stats),
                config: config.clone(),
                conns: Vec::new(),
                reg_write: Vec::new(),
                free: Vec::new(),
                job_tx,
                done_rx,
                shutdown: Arc::clone(&shutdown),
                next_gen: 1,
                phases: PhaseTimes::default(),
            };
            std::thread::Builder::new().name("ppuf-reactor".into()).spawn(move || reactor.run())?
        };

        Ok(AsyncServer {
            service,
            local_addr,
            shutdown,
            waker,
            stats,
            loop_thread: Some(loop_thread),
            dispatch_threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<VerificationService> {
        &self.service
    }

    /// The transport counter block (also merged into the service's
    /// Prometheus exposition).
    pub fn stats(&self) -> &Arc<TransportStats> {
        &self.stats
    }

    /// Stops the event loop (closing every connection) and joins all
    /// transport threads. The service itself keeps running.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        // the loop thread dropped the job sender, so dispatch threads
        // drain and exit on their own
        for handle in self.dispatch_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for AsyncServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A dispatch thread: runs blocking service calls off the event loop.
fn dispatch_loop(
    service: &VerificationService,
    job_rx: &Receiver<Job>,
    done_tx: &Sender<Done>,
    waker: &Waker,
) {
    while let Ok(job) = job_rx.recv() {
        let response = service.handle_traced(job.request, job.trace);
        let done = Done { slot: job.slot, gen: job.gen, corr: job.corr, response };
        if done_tx.send(done).is_err() {
            break; // event loop gone
        }
        let _ = waker.wake();
    }
}

/// The event-loop state, owned by the reactor thread.
struct Reactor {
    poll: Poll,
    listener: TcpListener,
    service: Arc<VerificationService>,
    stats: Arc<TransportStats>,
    config: AsyncConfig,
    /// Connection slab; `Token(slot + TOKEN_BASE)` addresses a slot.
    conns: Vec<Option<Conn>>,
    /// Whether the slot is currently registered for write readiness.
    reg_write: Vec<bool>,
    free: Vec<usize>,
    job_tx: Sender<Job>,
    done_rx: Receiver<Done>,
    shutdown: Arc<AtomicBool>,
    next_gen: u64,
    phases: PhaseTimes,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Events::with_capacity(self.config.events_capacity);
        let mut last_sweep = Instant::now();
        while !self.shutdown.load(Ordering::SeqCst) {
            let wait_t0 = Instant::now();
            if let Err(e) = self.poll.poll(&mut events, Some(self.config.sweep_interval)) {
                self.service.recorder().warn(&format!("reactor poll failed: {e}"));
                break;
            }
            self.phases.poll_wait += wait_t0.elapsed();
            self.stats.loop_tick(events.len());
            let now = Instant::now();
            for event in &events {
                match event.token() {
                    WAKER_TOKEN => {} // completions drained below
                    LISTENER_TOKEN => {
                        let t0 = Instant::now();
                        self.accept_ready(now);
                        self.phases.accept += t0.elapsed();
                    }
                    token => {
                        self.conn_ready(token, event.is_readable(), event.is_writable(), now);
                    }
                }
            }
            self.drain_completions(now);
            if now.duration_since(last_sweep) >= self.config.sweep_interval {
                self.sweep(now);
                self.flush_phase_profile();
                last_sweep = now;
            }
        }
        // teardown: every surviving connection closes with its span
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            self.close(slot, CloseReason::Shutdown, now);
        }
        self.flush_phase_profile();
    }

    /// Flushes the locally accumulated loop-phase times into the service
    /// profiler under `server.reactor;*` paths. The parent's wall time is
    /// the whole interval covered (wait + busy) with zero self time, so
    /// folded stacks show exactly where the loop thread's time went.
    fn flush_phase_profile(&mut self) {
        let p = std::mem::take(&mut self.phases);
        let busy = p.busy();
        if p.poll_wait.is_zero() && busy.is_zero() {
            return;
        }
        let profiler = self.service.profiler();
        profiler.record_path("server.reactor", p.poll_wait + busy, Duration::ZERO);
        profiler.record_leaf("server.reactor;poll_wait", p.poll_wait);
        profiler.record_leaf("server.reactor;accept", p.accept);
        profiler.record_leaf("server.reactor;parse", p.parse);
        profiler.record_leaf("server.reactor;dispatch", p.dispatch);
        profiler.record_leaf("server.reactor;write", p.write);
    }

    fn open_count(&self) -> usize {
        self.conns.len() - self.free.len()
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.open_count() >= self.config.max_connections {
                        // cap shed: close before the kernel buffers more.
                        // (The wire mode is unknowable before a read, so
                        // there is no portable way to say `Overloaded`.)
                        self.stats.conn_rejected();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let mut conn = Conn::new(stream, next_trace_id(), now);
                    conn.gen = self.next_gen;
                    self.next_gen += 1;
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.reg_write.push(false);
                        self.conns.len() - 1
                    });
                    let token = Token(slot + TOKEN_BASE);
                    if let Err(e) =
                        self.poll.register(conn.stream(), token, Interest::READABLE, Mode::Level)
                    {
                        self.service.recorder().warn(&format!("conn register failed: {e}"));
                        self.free.push(slot);
                        continue;
                    }
                    self.reg_write[slot] = false;
                    self.stats.conn_opened();
                    self.service.recorder().counter_add("server.connections", 1);
                    self.conns[slot] = Some(conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.service.recorder().warn(&format!("accept failed: {e}"));
                    break;
                }
            }
        }
    }

    fn conn_ready(&mut self, token: Token, readable: bool, writable: bool, now: Instant) {
        let Some(slot) = token.0.checked_sub(TOKEN_BASE) else { return };
        let Some(Some(conn)) = self.conns.get_mut(slot) else { return };
        if writable {
            let t0 = Instant::now();
            let flushed = conn.on_writable(now);
            self.phases.write += t0.elapsed();
            if let Err(reason) = flushed {
                self.close(slot, reason, now);
                return;
            }
        }
        if readable {
            let t0 = Instant::now();
            let parsed = conn.on_readable(now);
            self.phases.parse += t0.elapsed();
            match parsed {
                Ok(items) => {
                    let t0 = Instant::now();
                    for item in items {
                        self.handle_inbound(slot, item);
                    }
                    self.phases.dispatch += t0.elapsed();
                }
                Err(reason) => {
                    self.close(slot, reason, now);
                    return;
                }
            }
        }
        self.flush_and_settle(slot, now);
    }

    /// Routes one parsed inbound item: malformed frames answer inline,
    /// well-formed requests go to the dispatch pool (or shed).
    fn handle_inbound(&mut self, slot: usize, item: Inbound) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else { return };
        match item {
            Inbound::Malformed { corr, message } => {
                self.service.recorder().counter_add("server.requests.malformed", 1);
                conn.complete(corr, &Response::error(ErrorKind::Malformed, message));
            }
            Inbound::Request { corr, request, trace } => {
                self.stats.request_parsed(conn.mode());
                let job = Job { slot, gen: conn.gen, corr, request, trace };
                match self.job_tx.try_send(job) {
                    Ok(()) => conn.in_flight += 1,
                    Err(TrySendError::Full(job)) => {
                        // dispatch tier saturated: shed from the event
                        // loop with the same shape the service's own
                        // queue-full path uses
                        self.stats.request_shed();
                        let response = Response::Error {
                            kind: ErrorKind::Overloaded,
                            message: "dispatch queue full".into(),
                            retry_after_ms: Some(self.service.config().retry_after_ms),
                        };
                        conn.complete(job.corr, &response);
                    }
                    Err(TrySendError::Disconnected(_)) => {} // shutting down
                }
            }
        }
    }

    /// Pulls every finished request off the completion channel and routes
    /// it to its (still-live) connection.
    fn drain_completions(&mut self, now: Instant) {
        while let Ok(done) = self.done_rx.try_recv() {
            let t0 = Instant::now();
            let Some(Some(conn)) = self.conns.get_mut(done.slot) else { continue };
            if conn.gen != done.gen {
                continue; // slot recycled since dispatch: stale
            }
            conn.in_flight = conn.in_flight.saturating_sub(1);
            conn.complete(done.corr, &done.response);
            self.phases.dispatch += t0.elapsed();
            self.flush_and_settle(done.slot, now);
        }
    }

    /// Pushes buffered bytes, fixes the write-interest registration, and
    /// closes the connection if it has fully drained after peer EOF or
    /// its unread-response backlog passed the cap.
    fn flush_and_settle(&mut self, slot: usize, now: Instant) {
        let t0 = Instant::now();
        self.flush_and_settle_inner(slot, now);
        self.phases.write += t0.elapsed();
    }

    fn flush_and_settle_inner(&mut self, slot: usize, now: Instant) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else { return };
        if conn.wants_write() {
            if let Err(reason) = conn.on_writable(now) {
                self.close(slot, reason, now);
                return;
            }
        }
        let Some(Some(conn)) = self.conns.get_mut(slot) else { return };
        if conn.drained() {
            self.close(slot, CloseReason::Eof, now);
            return;
        }
        if conn.backlog() > self.config.max_write_buf {
            self.stats.conn_reaped();
            self.close(slot, CloseReason::Backpressure, now);
            return;
        }
        let want = conn.wants_write();
        if want != self.reg_write[slot] {
            let interest =
                if want { Interest::READABLE.add(Interest::WRITABLE) } else { Interest::READABLE };
            let token = Token(slot + TOKEN_BASE);
            if self.poll.reregister(conn.stream(), token, interest, Mode::Level).is_ok() {
                self.reg_write[slot] = want;
            }
        }
    }

    /// Reaps slow-loris frames past the read deadline and idle
    /// connections past the idle timeout.
    fn sweep(&mut self, now: Instant) {
        for slot in 0..self.conns.len() {
            let Some(Some(conn)) = self.conns.get(slot) else { continue };
            let reason = if conn
                .frame_since
                .is_some_and(|since| now.duration_since(since) >= self.config.read_deadline)
            {
                Some(CloseReason::ReadDeadline)
            } else if conn.in_flight == 0
                && now.duration_since(conn.last_activity) >= self.config.idle_timeout
            {
                // write progress refreshes last_activity, so a connection
                // stuck with buffered responses the peer never reads is
                // idle too — not exempt from reaping
                Some(CloseReason::IdleTimeout)
            } else {
                None
            };
            if let Some(reason) = reason {
                self.stats.conn_reaped();
                self.close(slot, reason, now);
            }
        }
    }

    /// Tears a connection down: deregisters, records its `server.conn`
    /// root span, updates gauges, and recycles the slot.
    fn close(&mut self, slot: usize, reason: CloseReason, now: Instant) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else { return };
        let _ = self.poll.deregister(conn.stream());
        self.stats.conn_closed();
        let mode = match conn.mode() {
            WireMode::Unknown => "unknown",
            WireMode::Json => "json",
            WireMode::Binary => "binary",
        };
        record_root_interval(
            self.service.recorder().as_ref(),
            conn.trace,
            "server.conn",
            conn.opened,
            now,
            vec![
                ("reason".to_string(), reason.label().to_string()),
                ("requests".to_string(), conn.requests.to_string()),
                ("mode".to_string(), mode.to_string()),
            ],
        );
        self.free.push(slot);
    }
}
