//! Load generator: concurrent honest, impostor, and garbage clients
//! against a live TCP server, with latency-percentile reporting.
//!
//! [`run_loadgen`] stands up a real [`PpufServer`] on a loopback port,
//! registers one generated device, and drives three client cohorts over
//! real sockets:
//!
//! - **honest** clients answer from the device's fast path and must be
//!   accepted;
//! - **impostor** clients model a simulating attacker — the answer is
//!   *correct* but arrives after the deadline (the paper's Ω(n²)
//!   simulation gap, compressed into a sleep) and must be rejected on
//!   timing;
//! - **garbage** clients send malformed frames, non-requests, and bogus
//!   nonces and must receive structured errors, never dropped
//!   connections.
//!
//! The run report carries client-side latency percentiles (via
//! [`SampleSeries`]) and the server's own telemetry snapshot, so one JSON
//! file answers both "how fast" and "what did the server actually do".

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use ppuf_analog::units::Seconds;
use ppuf_analog::variation::Environment;
use ppuf_core::device::{Ppuf, PpufConfig};
use ppuf_core::protocol::auth::{prove, ProverAnswer};
use ppuf_telemetry::{SampleSeries, SampleSummary};

use crate::service::{ServiceConfig, VerificationService};
use crate::tcp::{Client, PpufServer};
use crate::wire::{ErrorKind, Request, Response};

/// Parameters of one load-generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenConfig {
    /// Free-text label written into the report.
    pub label: String,
    /// Device size (circuit nodes).
    pub nodes: usize,
    /// Control-grid side length.
    pub grid: usize,
    /// Seed for device generation and server challenge sampling.
    pub seed: u64,
    /// Server verifier worker threads.
    pub workers: usize,
    /// Server verification queue capacity.
    pub queue_capacity: usize,
    /// Server rotating challenge pool (> 0 so repeated answers can hit
    /// the verification cache).
    pub challenge_pool: usize,
    /// Server answer deadline in seconds.
    pub deadline_s: f64,
    /// Honest client threads.
    pub honest_clients: usize,
    /// Impostor (deadline-violating) client threads.
    pub impostor_clients: usize,
    /// Garbage (malformed-traffic) client threads.
    pub garbage_clients: usize,
    /// Requests each client thread performs.
    pub requests_per_client: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            label: "loadgen".into(),
            nodes: 8,
            grid: 2,
            seed: 7,
            workers: 2,
            queue_capacity: 64,
            challenge_pool: 4,
            deadline_s: 0.5,
            honest_clients: 4,
            impostor_clients: 2,
            garbage_clients: 2,
            requests_per_client: 5,
        }
    }
}

impl LoadgenConfig {
    /// The CI smoke profile: a small device, 2 workers, 100 requests
    /// total across all cohorts.
    pub fn smoke() -> Self {
        LoadgenConfig {
            label: "smoke".into(),
            honest_clients: 6,
            impostor_clients: 2,
            garbage_clients: 2,
            requests_per_client: 10,
            ..LoadgenConfig::default()
        }
    }

    /// Total requests the run will attempt.
    pub fn total_requests(&self) -> usize {
        (self.honest_clients + self.impostor_clients + self.garbage_clients)
            * self.requests_per_client
    }
}

/// Latency statistics in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Samples behind these statistics.
    pub count: usize,
    /// Mean latency.
    pub mean_ms: f64,
    /// Fastest request.
    pub min_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

impl LatencyStats {
    fn from_summary(summary: &SampleSummary) -> Self {
        LatencyStats {
            count: summary.count,
            mean_ms: summary.mean,
            min_ms: summary.min,
            p50_ms: summary.p50,
            p95_ms: summary.p95,
            p99_ms: summary.p99,
            max_ms: summary.max,
        }
    }
}

/// Outcome counts and latency for one client cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortReport {
    /// Client threads in the cohort.
    pub clients: usize,
    /// Request rounds attempted.
    pub requests: usize,
    /// Rounds ending in an accepted verdict.
    pub accepted: usize,
    /// Rounds rejected specifically for missing the deadline.
    pub rejected_deadline: usize,
    /// Rounds rejected for any other failed check.
    pub rejected_other: usize,
    /// Rounds answered with a structured error response.
    pub structured_errors: usize,
    /// Overload responses absorbed by retrying with a fresh session.
    pub overload_retries: usize,
    /// Transport-level failures (connection errors, protocol breaches).
    pub io_errors: usize,
    /// Full-round latency percentiles, if any round completed.
    pub latency: Option<LatencyStats>,
}

/// The JSON run report written under `results/service/`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Echo of the run configuration.
    pub config: LoadgenConfig,
    /// Wall-clock duration of the traffic phase, seconds.
    pub duration_s: f64,
    /// Request rounds completed across all cohorts.
    pub total_requests: usize,
    /// Completed rounds per second of traffic.
    pub throughput_rps: f64,
    /// Honest cohort outcome.
    pub honest: CohortReport,
    /// Impostor cohort outcome.
    pub impostor: CohortReport,
    /// Garbage cohort outcome.
    pub garbage: CohortReport,
    /// The server's telemetry counters after the run.
    pub server_counters: std::collections::BTreeMap<String, u64>,
    /// The server's telemetry warnings after the run.
    pub server_warnings: Vec<String>,
}

impl LoadgenReport {
    /// Renders the report as indented JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Checks the invariants the smoke profile promises: honest traffic
    /// accepted, impostors rejected on the deadline, garbage answered
    /// with structured errors, no transport failures, and at least one
    /// verification served from cache.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn check_smoke_invariants(&self) -> Result<(), String> {
        let h = &self.honest;
        if h.accepted != h.requests {
            return Err(format!("honest: {}/{} accepted", h.accepted, h.requests));
        }
        let i = &self.impostor;
        if i.rejected_deadline != i.requests {
            return Err(format!(
                "impostor: {}/{} rejected on deadline",
                i.rejected_deadline, i.requests
            ));
        }
        let g = &self.garbage;
        if g.structured_errors != g.requests {
            return Err(format!(
                "garbage: {}/{} answered with structured errors",
                g.structured_errors, g.requests
            ));
        }
        for (name, cohort) in [("honest", h), ("impostor", i), ("garbage", g)] {
            if cohort.io_errors != 0 {
                return Err(format!("{name}: {} transport failures", cohort.io_errors));
            }
        }
        let cache_hits = self.server_counters.get("server.cache.hits").copied().unwrap_or(0);
        if cache_hits == 0 {
            return Err("no verification was served from cache".into());
        }
        if !self.server_warnings.is_empty() {
            return Err(format!("server warnings: {:?}", self.server_warnings));
        }
        Ok(())
    }
}

#[derive(Default)]
struct CohortStats {
    requests: usize,
    accepted: usize,
    rejected_deadline: usize,
    rejected_other: usize,
    structured_errors: usize,
    overload_retries: usize,
    io_errors: usize,
    latency: SampleSeries,
}

impl CohortStats {
    fn merge(&mut self, other: CohortStats) {
        self.requests += other.requests;
        self.accepted += other.accepted;
        self.rejected_deadline += other.rejected_deadline;
        self.rejected_other += other.rejected_other;
        self.structured_errors += other.structured_errors;
        self.overload_retries += other.overload_retries;
        self.io_errors += other.io_errors;
        self.latency.merge(&other.latency);
    }

    fn into_report(self, clients: usize) -> CohortReport {
        CohortReport {
            clients,
            requests: self.requests,
            accepted: self.accepted,
            rejected_deadline: self.rejected_deadline,
            rejected_other: self.rejected_other,
            structured_errors: self.structured_errors,
            overload_retries: self.overload_retries,
            io_errors: self.io_errors,
            latency: self.latency.summary().as_ref().map(LatencyStats::from_summary),
        }
    }
}

const DEVICE_ID: &str = "loadgen-device";
/// Overload retries per round before giving up and counting an error.
const MAX_OVERLOAD_RETRIES: usize = 32;

/// Runs one full load-generation session: server up, traffic, report.
///
/// # Errors
///
/// Returns a message if the device cannot be generated, the server
/// cannot bind, or registration fails — per-request failures are
/// *counted*, not propagated, so one flaky round cannot kill a run.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let ppuf = Ppuf::generate(PpufConfig::paper(config.nodes, config.grid), config.seed)
        .map_err(|e| format!("device generation failed: {e}"))?;
    let model = ppuf.public_model().map_err(|e| format!("model publication failed: {e}"))?;

    let service = VerificationService::new(ServiceConfig {
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        deadline: Some(Seconds(config.deadline_s)),
        challenge_pool: config.challenge_pool,
        seed: config.seed,
        ..ServiceConfig::default()
    });
    let mut server = PpufServer::bind("127.0.0.1:0", Arc::new(service))
        .map_err(|e| format!("server bind failed: {e}"))?;
    let addr = server.local_addr();

    let mut registrar =
        Client::connect(addr).map_err(|e| format!("registration connect failed: {e}"))?;
    match registrar
        .request(&Request::Register { device_id: DEVICE_ID.into(), model })
        .map_err(|e| format!("registration failed: {e}"))?
    {
        Response::Registered { .. } => {}
        other => return Err(format!("registration rejected: {other:?}")),
    }
    drop(registrar);

    let started = Instant::now();
    let (honest, impostor, garbage) = crossbeam::scope(|scope| {
        let mut honest_handles = Vec::new();
        for _ in 0..config.honest_clients {
            let ppuf = &ppuf;
            honest_handles
                .push(scope.spawn(move |_| honest_client(addr, ppuf, config.requests_per_client)));
        }
        let mut impostor_handles = Vec::new();
        for _ in 0..config.impostor_clients {
            let ppuf = &ppuf;
            let delay = Duration::from_secs_f64(config.deadline_s * 1.5 + 0.05);
            impostor_handles
                .push(scope.spawn(move |_| {
                    impostor_client(addr, ppuf, config.requests_per_client, delay)
                }));
        }
        let mut garbage_handles = Vec::new();
        for _ in 0..config.garbage_clients {
            garbage_handles
                .push(scope.spawn(move |_| garbage_client(addr, config.requests_per_client)));
        }
        let mut honest = CohortStats::default();
        for handle in honest_handles {
            honest.merge(handle.join().unwrap_or_default());
        }
        let mut impostor = CohortStats::default();
        for handle in impostor_handles {
            impostor.merge(handle.join().unwrap_or_default());
        }
        let mut garbage = CohortStats::default();
        for handle in garbage_handles {
            garbage.merge(handle.join().unwrap_or_default());
        }
        (honest, impostor, garbage)
    })
    .map_err(|_| "a load-generation thread panicked".to_string())?;
    let duration = started.elapsed().as_secs_f64().max(1e-9);

    let snapshot = server.service().recorder().snapshot(&config.label);
    server.shutdown();

    let total_requests = honest.requests + impostor.requests + garbage.requests;
    Ok(LoadgenReport {
        config: config.clone(),
        duration_s: duration,
        total_requests,
        throughput_rps: total_requests as f64 / duration,
        honest: honest.into_report(config.honest_clients),
        impostor: impostor.into_report(config.impostor_clients),
        garbage: garbage.into_report(config.garbage_clients),
        server_counters: snapshot.counters,
        server_warnings: snapshot.warnings,
    })
}

/// One full challenge/answer round; returns the verdict response.
fn answer_round(
    client: &mut Client,
    ppuf: &Ppuf,
    delay: Option<Duration>,
    stats: &mut CohortStats,
) -> std::io::Result<Option<Response>> {
    for _ in 0..=MAX_OVERLOAD_RETRIES {
        let (nonce, challenge) =
            match client.request(&Request::GetChallenge { device_id: DEVICE_ID.into() })? {
                Response::Challenge { nonce, challenge, .. } => (nonce, challenge),
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("expected challenge, got {other:?}"),
                    ))
                }
            };
        if let Some(delay) = delay {
            std::thread::sleep(delay);
        }
        let answer = match prove(&ppuf.executor(Environment::NOMINAL), &challenge) {
            Ok(answer) => answer,
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
            }
        };
        let response = client.request(&Request::SubmitAnswer {
            device_id: DEVICE_ID.into(),
            nonce,
            answer,
        })?;
        if let Response::Error { kind: ErrorKind::Overloaded, retry_after_ms, .. } = &response {
            stats.overload_retries += 1;
            std::thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(50)));
            continue; // fresh session: the shed one is spent
        }
        return Ok(Some(response));
    }
    Ok(None) // overloaded through every retry
}

fn honest_client(addr: std::net::SocketAddr, ppuf: &Ppuf, requests: usize) -> CohortStats {
    let mut stats = CohortStats::default();
    let Ok(mut client) = Client::connect(addr) else {
        stats.io_errors = requests;
        stats.requests = requests;
        return stats;
    };
    for _ in 0..requests {
        stats.requests += 1;
        let round_start = Instant::now();
        match answer_round(&mut client, ppuf, None, &mut stats) {
            Ok(Some(Response::Verdict { accepted: true, .. })) => {
                stats.accepted += 1;
                stats.latency.record(round_start.elapsed().as_secs_f64() * 1e3);
            }
            Ok(Some(Response::Verdict { report, .. })) => {
                if report.within_deadline {
                    stats.rejected_other += 1;
                } else {
                    stats.rejected_deadline += 1;
                }
            }
            Ok(Some(_)) => stats.structured_errors += 1,
            Ok(None) | Err(_) => stats.io_errors += 1,
        }
    }
    stats
}

fn impostor_client(
    addr: std::net::SocketAddr,
    ppuf: &Ppuf,
    requests: usize,
    delay: Duration,
) -> CohortStats {
    let mut stats = CohortStats::default();
    let Ok(mut client) = Client::connect(addr) else {
        stats.io_errors = requests;
        stats.requests = requests;
        return stats;
    };
    for _ in 0..requests {
        stats.requests += 1;
        let round_start = Instant::now();
        match answer_round(&mut client, ppuf, Some(delay), &mut stats) {
            Ok(Some(Response::Verdict { accepted: false, report, .. }))
                if !report.within_deadline =>
            {
                stats.rejected_deadline += 1;
                stats.latency.record(round_start.elapsed().as_secs_f64() * 1e3);
            }
            Ok(Some(Response::Verdict { accepted: true, .. })) => stats.accepted += 1,
            Ok(Some(Response::Verdict { .. })) => stats.rejected_other += 1,
            Ok(Some(_)) => stats.structured_errors += 1,
            Ok(None) | Err(_) => stats.io_errors += 1,
        }
    }
    stats
}

fn garbage_client(addr: std::net::SocketAddr, requests: usize) -> CohortStats {
    let mut stats = CohortStats::default();
    let Ok(mut client) = Client::connect(addr) else {
        stats.io_errors = requests;
        stats.requests = requests;
        return stats;
    };
    for i in 0..requests {
        stats.requests += 1;
        let outcome = match i % 4 {
            // not JSON at all
            0 => client.send_raw(b"\x7bnot json at all"),
            // valid JSON, not a request
            1 => client.send_raw(b"{\"Bogus\": {\"x\": 1}}"),
            // a request for a device that does not exist
            2 => client.request(&Request::GetChallenge { device_id: "no-such-device".into() }),
            // a well-formed answer for a nonce that was never issued
            _ => client.request(&Request::SubmitAnswer {
                device_id: DEVICE_ID.into(),
                nonce: u64::MAX - i as u64,
                answer: bogus_answer(),
            }),
        };
        match outcome {
            Ok(Response::Error { .. }) => stats.structured_errors += 1,
            Ok(_) => stats.rejected_other += 1,
            Err(_) => stats.io_errors += 1,
        }
    }
    stats
}

/// A syntactically valid answer with nonsense content — it must die on
/// the nonce check before any verifier ever sees it.
fn bogus_answer() -> ProverAnswer {
    use ppuf_maxflow::{Flow, NodeId};
    let zero = Flow::from_edge_flows(NodeId::new(0), NodeId::new(1), 0.0, vec![0.0; 4]);
    ProverAnswer { response: true, flow_a: zero.clone(), flow_b: zero }
}
