//! Load generator: concurrent honest, impostor, and garbage clients
//! against a live TCP server, with latency-percentile reporting.
//!
//! [`run_loadgen`] stands up a real [`PpufServer`] on a loopback port,
//! registers one generated device, and drives three client cohorts over
//! real sockets:
//!
//! - **honest** clients answer from the device's fast path and must be
//!   accepted;
//! - **impostor** clients model a simulating attacker — the answer is
//!   *correct* but arrives after the deadline (the paper's Ω(n²)
//!   simulation gap, compressed into a sleep) and must be rejected on
//!   timing;
//! - **garbage** clients send malformed frames, non-requests, and bogus
//!   nonces and must receive structured errors, never dropped
//!   connections.
//!
//! The run report carries client-side latency percentiles (from a
//! bounded [`LogHistogram`] per cohort — fixed memory no matter how long
//! the run), the server's own telemetry snapshot, and the server's final
//! SLO [`HealthReport`], so one JSON file answers "how fast", "what did
//! the server actually do", and "was it healthy at the end".

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use std::collections::BTreeMap;

use ppuf_analog::units::Seconds;
use ppuf_analog::variation::Environment;
use ppuf_core::device::{Ppuf, PpufConfig};
use ppuf_core::protocol::auth::{prove, ProverAnswer};
use ppuf_telemetry::{
    next_trace_id, prometheus, HistogramSnapshot, LogHistogram, SampleSummary, TraceId,
};

use crate::health::{HealthReport, HealthStatus};
use crate::service::{ServiceConfig, VerificationService};
use crate::tcp::{Client, PpufServer};
use crate::wire::{ErrorKind, Request, Response, StatsFormat};

/// Parameters of one load-generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenConfig {
    /// Free-text label written into the report.
    pub label: String,
    /// Device size (circuit nodes).
    pub nodes: usize,
    /// Control-grid side length.
    pub grid: usize,
    /// Seed for device generation and server challenge sampling.
    pub seed: u64,
    /// Server verifier worker threads.
    pub workers: usize,
    /// Server verification queue capacity.
    pub queue_capacity: usize,
    /// Server rotating challenge pool (> 0 so repeated answers can hit
    /// the verification cache).
    pub challenge_pool: usize,
    /// Server answer deadline in seconds.
    pub deadline_s: f64,
    /// Honest client threads.
    pub honest_clients: usize,
    /// Impostor (deadline-violating) client threads.
    pub impostor_clients: usize,
    /// Garbage (malformed-traffic) client threads.
    pub garbage_clients: usize,
    /// Requests each client thread performs.
    pub requests_per_client: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            label: "loadgen".into(),
            nodes: 8,
            grid: 2,
            seed: 7,
            workers: 2,
            queue_capacity: 64,
            challenge_pool: 4,
            deadline_s: 0.5,
            honest_clients: 4,
            impostor_clients: 2,
            garbage_clients: 2,
            requests_per_client: 5,
        }
    }
}

impl LoadgenConfig {
    /// The CI smoke profile: a small device, 2 workers, 100 requests
    /// total across all cohorts.
    pub fn smoke() -> Self {
        LoadgenConfig {
            label: "smoke".into(),
            honest_clients: 6,
            impostor_clients: 2,
            garbage_clients: 2,
            requests_per_client: 10,
            ..LoadgenConfig::default()
        }
    }

    /// Total requests the run will attempt.
    pub fn total_requests(&self) -> usize {
        (self.honest_clients + self.impostor_clients + self.garbage_clients)
            * self.requests_per_client
    }
}

/// Outcome counts and latency for one client cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortReport {
    /// Client threads in the cohort.
    pub clients: usize,
    /// Request rounds attempted.
    pub requests: usize,
    /// Rounds ending in an accepted verdict.
    pub accepted: usize,
    /// Rounds rejected specifically for missing the deadline.
    pub rejected_deadline: usize,
    /// Rounds rejected for any other failed check.
    pub rejected_other: usize,
    /// Rounds answered with a structured error response.
    pub structured_errors: usize,
    /// Overload responses absorbed by retrying with a fresh session.
    pub overload_retries: usize,
    /// Transport-level failures (connection errors, protocol breaches).
    pub io_errors: usize,
    /// Full-round latency summary in milliseconds, if any round completed
    /// (the same [`SampleSummary`] shape the telemetry report uses —
    /// `min`/`max`/`mean`/`p50`/`p95`/`p99`). Percentiles come from the
    /// bounded histogram below, so they overshoot the exact values by at
    /// most one log-bucket width.
    pub latency: Option<SampleSummary>,
    /// The sparse latency histogram the summary was computed from
    /// (milliseconds), for merging and finer-than-percentile analysis.
    pub latency_hist: Option<HistogramSnapshot>,
}

/// The JSON run report written under `results/service/`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Echo of the run configuration.
    pub config: LoadgenConfig,
    /// Wall-clock duration of the traffic phase, seconds.
    pub duration_s: f64,
    /// Request rounds completed across all cohorts.
    pub total_requests: usize,
    /// Completed rounds per second of traffic.
    pub throughput_rps: f64,
    /// Honest cohort outcome.
    pub honest: CohortReport,
    /// Impostor cohort outcome.
    pub impostor: CohortReport,
    /// Garbage cohort outcome.
    pub garbage: CohortReport,
    /// The server's telemetry counters after the run. The cache and DC
    /// warm-start counters are always present (zero-filled), so the smoke
    /// report records cache effectiveness even for a run that never hits.
    pub server_counters: BTreeMap<String, u64>,
    /// The server's telemetry warnings after the run.
    pub server_warnings: Vec<String>,
    /// Verdict rounds whose client-chosen trace id the server echoed.
    pub traced_requests: usize,
    /// Echoed trace ids whose server-side span tree assembled into one
    /// root containing `server.queue_wait`, `server.cache_probe`, and
    /// `server.verify` — end-to-end request correlation, proven.
    pub correlated_traces: usize,
    /// Parsed samples from the final live `Stats` Prometheus scrape (the
    /// scrape itself is validated, and checked monotone against one taken
    /// before the traffic phase).
    pub prometheus_samples: BTreeMap<String, f64>,
    /// The server's SLO assessment (`Request::Health`) taken right after
    /// the traffic phase.
    pub health: HealthReport,
}

impl LoadgenReport {
    /// Renders the report as indented JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Checks the invariants the smoke profile promises: honest traffic
    /// accepted, impostors rejected on the deadline, garbage answered
    /// with structured errors, no transport failures, an effective
    /// verification cache, a warm DC engine, at least one end-to-end
    /// correlated request trace, a live Prometheus scrape exposing the
    /// headline serving metrics (including the `ppuf_slo_*` gauges), and
    /// an `Ok` SLO health verdict at the end of the run.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn check_smoke_invariants(&self) -> Result<(), String> {
        let h = &self.honest;
        if h.accepted != h.requests {
            return Err(format!("honest: {}/{} accepted", h.accepted, h.requests));
        }
        let i = &self.impostor;
        if i.rejected_deadline != i.requests {
            return Err(format!(
                "impostor: {}/{} rejected on deadline",
                i.rejected_deadline, i.requests
            ));
        }
        let g = &self.garbage;
        if g.structured_errors != g.requests {
            return Err(format!(
                "garbage: {}/{} answered with structured errors",
                g.structured_errors, g.requests
            ));
        }
        for (name, cohort) in [("honest", h), ("impostor", i), ("garbage", g)] {
            if cohort.io_errors != 0 {
                return Err(format!("{name}: {} transport failures", cohort.io_errors));
            }
        }
        let counter = |name: &str| self.server_counters.get(name).copied().unwrap_or(0);
        let cache_hits = counter("server.cache.hits");
        if cache_hits == 0 {
            return Err("no verification was served from cache".into());
        }
        let cache_misses = counter("server.cache.misses");
        if cache_hits < cache_misses {
            return Err(format!(
                "cache is ineffective: {cache_hits} hits vs {cache_misses} misses \
                 under a rotating challenge pool"
            ));
        }
        if counter("analog.dc.warm_start_hits") == 0 {
            return Err("the DC engine never warm-started".into());
        }
        if self.traced_requests == 0 {
            return Err("no request round carried an echoed trace id".into());
        }
        if self.correlated_traces == 0 {
            return Err("no echoed trace id matched a complete server-side span tree".into());
        }
        for required in [
            "ppuf_cache_hits_total",
            "ppuf_pool_queue_depth",
            "ppuf_dc_warm_start_hits_total",
            "ppuf_slo_health",
            "ppuf_slo_latency_p99_seconds",
        ] {
            if !self.prometheus_samples.contains_key(required) {
                return Err(format!("prometheus scrape is missing {required}"));
            }
        }
        if self.health.status != HealthStatus::Ok {
            return Err(format!(
                "service ended the run {:?}, not Ok: {:?}",
                self.health.status, self.health.slos
            ));
        }
        if !self.server_warnings.is_empty() {
            return Err(format!("server warnings: {:?}", self.server_warnings));
        }
        Ok(())
    }
}

#[derive(Default)]
struct CohortStats {
    requests: usize,
    accepted: usize,
    rejected_deadline: usize,
    rejected_other: usize,
    structured_errors: usize,
    overload_retries: usize,
    io_errors: usize,
    /// Full-round latencies in milliseconds; bounded no matter how many
    /// rounds the run performs.
    latency: LogHistogram,
    /// Trace ids the server echoed back on verdict rounds.
    trace_ids: Vec<u64>,
}

impl CohortStats {
    fn merge(&mut self, other: CohortStats) {
        self.requests += other.requests;
        self.accepted += other.accepted;
        self.rejected_deadline += other.rejected_deadline;
        self.rejected_other += other.rejected_other;
        self.structured_errors += other.structured_errors;
        self.overload_retries += other.overload_retries;
        self.io_errors += other.io_errors;
        self.latency.merge(&other.latency);
        self.trace_ids.extend(other.trace_ids);
    }

    fn into_report(self, clients: usize) -> CohortReport {
        CohortReport {
            clients,
            requests: self.requests,
            accepted: self.accepted,
            rejected_deadline: self.rejected_deadline,
            rejected_other: self.rejected_other,
            structured_errors: self.structured_errors,
            overload_retries: self.overload_retries,
            io_errors: self.io_errors,
            latency: self.latency.summary(),
            latency_hist: if self.latency.is_empty() {
                None
            } else {
                Some(self.latency.snapshot())
            },
        }
    }
}

const DEVICE_ID: &str = "loadgen-device";
/// Overload retries per round before giving up and counting an error.
const MAX_OVERLOAD_RETRIES: usize = 32;

/// Runs one full load-generation session: server up, traffic, report.
///
/// # Errors
///
/// Returns a message if the device cannot be generated, the server
/// cannot bind, or registration fails — per-request failures are
/// *counted*, not propagated, so one flaky round cannot kill a run.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let ppuf = Ppuf::generate(PpufConfig::paper(config.nodes, config.grid), config.seed)
        .map_err(|e| format!("device generation failed: {e}"))?;
    let model = ppuf.public_model().map_err(|e| format!("model publication failed: {e}"))?;

    let service = VerificationService::new(ServiceConfig {
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        deadline: Some(Seconds(config.deadline_s)),
        challenge_pool: config.challenge_pool,
        seed: config.seed,
        ..ServiceConfig::default()
    });
    let mut server = PpufServer::bind("127.0.0.1:0", Arc::new(service))
        .map_err(|e| format!("server bind failed: {e}"))?;
    let addr = server.local_addr();

    let mut registrar =
        Client::connect(addr).map_err(|e| format!("registration connect failed: {e}"))?;
    match registrar
        .request(&Request::Register { device_id: DEVICE_ID.into(), model })
        .map_err(|e| format!("registration failed: {e}"))?
    {
        Response::Registered { .. } => {}
        other => return Err(format!("registration rejected: {other:?}")),
    }
    // first live scrape: the baseline for the monotone-counter check
    let scrape_before = scrape_prometheus(&mut registrar)?;
    drop(registrar);

    let started = Instant::now();
    let (honest, impostor, garbage) = crossbeam::scope(|scope| {
        let mut honest_handles = Vec::new();
        for _ in 0..config.honest_clients {
            let ppuf = &ppuf;
            honest_handles
                .push(scope.spawn(move |_| honest_client(addr, ppuf, config.requests_per_client)));
        }
        let mut impostor_handles = Vec::new();
        for _ in 0..config.impostor_clients {
            let ppuf = &ppuf;
            let delay = Duration::from_secs_f64(config.deadline_s * 1.5 + 0.05);
            impostor_handles
                .push(scope.spawn(move |_| {
                    impostor_client(addr, ppuf, config.requests_per_client, delay)
                }));
        }
        let mut garbage_handles = Vec::new();
        for _ in 0..config.garbage_clients {
            garbage_handles
                .push(scope.spawn(move |_| garbage_client(addr, config.requests_per_client)));
        }
        let mut honest = CohortStats::default();
        for handle in honest_handles {
            honest.merge(handle.join().unwrap_or_default());
        }
        let mut impostor = CohortStats::default();
        for handle in impostor_handles {
            impostor.merge(handle.join().unwrap_or_default());
        }
        let mut garbage = CohortStats::default();
        for handle in garbage_handles {
            garbage.merge(handle.join().unwrap_or_default());
        }
        (honest, impostor, garbage)
    })
    .map_err(|_| "a load-generation thread panicked".to_string())?;
    let duration = started.elapsed().as_secs_f64().max(1e-9);

    // second live scrape over a fresh socket: still valid exposition, and
    // every counter must have moved monotonically past the baseline
    let mut scraper =
        Client::connect(addr).map_err(|e| format!("stats scrape connect failed: {e}"))?;
    let prometheus_samples = scrape_prometheus(&mut scraper)?;
    // the SLO assessment over the same admin connection: the smoke gate
    // fails CI when the service ends a run anything but `Ok`
    let health = match scraper
        .request(&Request::Health)
        .map_err(|e| format!("health scrape failed: {e}"))?
    {
        Response::Health { report } => report,
        other => return Err(format!("expected health report, got {other:?}")),
    };
    drop(scraper);
    prometheus::check_monotone(&scrape_before, &prometheus_samples)
        .map_err(|e| format!("counter regressed between live scrapes: {e}"))?;

    // correlate client-side trace ids with the server's span trees
    let recorder = server.service().recorder();
    let trace_ids: Vec<u64> = honest.trace_ids.iter().chain(&impostor.trace_ids).copied().collect();
    let correlated_traces = trace_ids
        .iter()
        .filter(|&&id| {
            TraceId::from_raw(id)
                .and_then(|trace| recorder.assemble_trace(trace))
                .and_then(Result::ok)
                .is_some_and(|tree| {
                    tree.span.name == "server.request"
                        && ["server.queue_wait", "server.cache_probe", "server.verify"]
                            .iter()
                            .all(|name| tree.contains(name))
                })
        })
        .count();

    let mut snapshot = server.service().recorder().snapshot(&config.label);
    server.shutdown();
    // pin the cache-effectiveness and warm-start counters into the report
    // even when zero, so smoke.json always answers "did the cache work"
    for key in [
        "server.cache.hits",
        "server.cache.misses",
        "server.cache.evictions",
        "analog.dc.warm_start_hits",
        "analog.dc.warm_start_misses",
    ] {
        snapshot.counters.entry(key.into()).or_insert(0);
    }

    let total_requests = honest.requests + impostor.requests + garbage.requests;
    Ok(LoadgenReport {
        config: config.clone(),
        duration_s: duration,
        total_requests,
        throughput_rps: total_requests as f64 / duration,
        traced_requests: trace_ids.len(),
        correlated_traces,
        prometheus_samples,
        health,
        honest: honest.into_report(config.honest_clients),
        impostor: impostor.into_report(config.impostor_clients),
        garbage: garbage.into_report(config.garbage_clients),
        server_counters: snapshot.counters,
        server_warnings: snapshot.warnings,
    })
}

/// Issues one `Stats` admin request and validates the Prometheus text it
/// returns, yielding the parsed `name → value` samples.
fn scrape_prometheus(client: &mut Client) -> Result<BTreeMap<String, f64>, String> {
    match client
        .request(&Request::Stats { format: StatsFormat::Prometheus })
        .map_err(|e| format!("stats scrape failed: {e}"))?
    {
        Response::Stats { format: StatsFormat::Prometheus, body } => {
            prometheus::validate(&body).map_err(|e| format!("invalid prometheus exposition: {e}"))
        }
        other => Err(format!("expected prometheus stats, got {other:?}")),
    }
}

/// One full challenge/answer round; returns the verdict response.
fn answer_round(
    client: &mut Client,
    ppuf: &Ppuf,
    delay: Option<Duration>,
    stats: &mut CohortStats,
) -> std::io::Result<Option<Response>> {
    for _ in 0..=MAX_OVERLOAD_RETRIES {
        let (nonce, challenge) =
            match client.request(&Request::GetChallenge { device_id: DEVICE_ID.into() })? {
                Response::Challenge { nonce, challenge, .. } => (nonce, challenge),
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("expected challenge, got {other:?}"),
                    ))
                }
            };
        if let Some(delay) = delay {
            std::thread::sleep(delay);
        }
        let answer = match prove(&ppuf.executor(Environment::NOMINAL), &challenge) {
            Ok(answer) => answer,
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
            }
        };
        // submit inside the trace envelope so the server files its spans
        // under an id this client can later correlate
        let trace_id = next_trace_id().get();
        let (response, echoed) = client.request_traced(
            Request::SubmitAnswer { device_id: DEVICE_ID.into(), nonce, answer },
            trace_id,
        )?;
        if let Response::Error { kind: ErrorKind::Overloaded, retry_after_ms, .. } = &response {
            stats.overload_retries += 1;
            std::thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(50)));
            continue; // fresh session: the shed one is spent
        }
        if matches!(response, Response::Verdict { .. }) && echoed == Some(trace_id) {
            stats.trace_ids.push(trace_id);
        }
        return Ok(Some(response));
    }
    Ok(None) // overloaded through every retry
}

fn honest_client(addr: std::net::SocketAddr, ppuf: &Ppuf, requests: usize) -> CohortStats {
    let mut stats = CohortStats::default();
    let Ok(mut client) = Client::connect(addr) else {
        stats.io_errors = requests;
        stats.requests = requests;
        return stats;
    };
    for _ in 0..requests {
        stats.requests += 1;
        let round_start = Instant::now();
        match answer_round(&mut client, ppuf, None, &mut stats) {
            Ok(Some(Response::Verdict { accepted: true, .. })) => {
                stats.accepted += 1;
                stats.latency.record(round_start.elapsed().as_secs_f64() * 1e3);
            }
            Ok(Some(Response::Verdict { report, .. })) => {
                if report.within_deadline {
                    stats.rejected_other += 1;
                } else {
                    stats.rejected_deadline += 1;
                }
            }
            Ok(Some(_)) => stats.structured_errors += 1,
            Ok(None) | Err(_) => stats.io_errors += 1,
        }
    }
    stats
}

fn impostor_client(
    addr: std::net::SocketAddr,
    ppuf: &Ppuf,
    requests: usize,
    delay: Duration,
) -> CohortStats {
    let mut stats = CohortStats::default();
    let Ok(mut client) = Client::connect(addr) else {
        stats.io_errors = requests;
        stats.requests = requests;
        return stats;
    };
    for _ in 0..requests {
        stats.requests += 1;
        let round_start = Instant::now();
        match answer_round(&mut client, ppuf, Some(delay), &mut stats) {
            Ok(Some(Response::Verdict { accepted: false, report, .. }))
                if !report.within_deadline =>
            {
                stats.rejected_deadline += 1;
                stats.latency.record(round_start.elapsed().as_secs_f64() * 1e3);
            }
            Ok(Some(Response::Verdict { accepted: true, .. })) => stats.accepted += 1,
            Ok(Some(Response::Verdict { .. })) => stats.rejected_other += 1,
            Ok(Some(_)) => stats.structured_errors += 1,
            Ok(None) | Err(_) => stats.io_errors += 1,
        }
    }
    stats
}

fn garbage_client(addr: std::net::SocketAddr, requests: usize) -> CohortStats {
    let mut stats = CohortStats::default();
    let Ok(mut client) = Client::connect(addr) else {
        stats.io_errors = requests;
        stats.requests = requests;
        return stats;
    };
    for i in 0..requests {
        stats.requests += 1;
        let outcome = match i % 4 {
            // not JSON at all
            0 => client.send_raw(b"\x7bnot json at all"),
            // valid JSON, not a request
            1 => client.send_raw(b"{\"Bogus\": {\"x\": 1}}"),
            // a request for a device that does not exist
            2 => client.request(&Request::GetChallenge { device_id: "no-such-device".into() }),
            // a well-formed answer for a nonce that was never issued
            _ => client.request(&Request::SubmitAnswer {
                device_id: DEVICE_ID.into(),
                nonce: u64::MAX - i as u64,
                answer: bogus_answer(),
            }),
        };
        match outcome {
            Ok(Response::Error { .. }) => stats.structured_errors += 1,
            Ok(_) => stats.rejected_other += 1,
            Err(_) => stats.io_errors += 1,
        }
    }
    stats
}

/// A syntactically valid answer with nonsense content — it must die on
/// the nonce check before any verifier ever sees it.
fn bogus_answer() -> ProverAnswer {
    use ppuf_maxflow::{Flow, NodeId};
    let zero = Flow::from_edge_flows(NodeId::new(0), NodeId::new(1), 0.0, vec![0.0; 4]);
    ProverAnswer { response: true, flow_a: zero.clone(), flow_b: zero }
}

// ---------------------------------------------------------------------------
// Async (multiplexed) load generation
// ---------------------------------------------------------------------------

use crate::mux::{self, Driver, MuxConfig, MuxStats, Outbound, WireFlavor};
use crate::reactor::{AsyncConfig, AsyncServer};
use crate::wire2;

/// Parameters of one multiplexed load-generation run against the async
/// serving tier.
///
/// Unlike [`LoadgenConfig`] (one thread per blocking client), this run
/// drives *connections* from a single event-loop thread: every
/// connection carries [`pipeline`](Self::pipeline) concurrent request
/// streams, so `connections × pipeline` rounds are in flight at once
/// against one [`AsyncServer`] process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncLoadgenConfig {
    /// Free-text label written into the report.
    pub label: String,
    /// Device size (circuit nodes).
    pub nodes: usize,
    /// Control-grid side length.
    pub grid: usize,
    /// Seed for device generation and server challenge sampling.
    pub seed: u64,
    /// Server verifier worker threads.
    pub workers: usize,
    /// Server verification queue capacity.
    pub queue_capacity: usize,
    /// Server rotating challenge pool.
    pub challenge_pool: usize,
    /// Server answer deadline in seconds.
    pub deadline_s: f64,
    /// Connections running honest request streams.
    pub honest_connections: usize,
    /// Connections running impostor (deadline-violating) streams.
    pub impostor_connections: usize,
    /// Connections running garbage (malformed-traffic) streams.
    pub garbage_connections: usize,
    /// Concurrent request streams per connection.
    pub pipeline: usize,
    /// Challenge/answer rounds each stream completes.
    pub rounds_per_stream: usize,
    /// Protocol every cohort speaks.
    pub wire: WireFlavor,
    /// Server open-connection cap.
    pub max_connections: usize,
    /// Server dispatch-pool threads.
    pub dispatch_threads: usize,
    /// Server dispatch queue depth (overflow sheds `Overloaded`).
    pub dispatch_queue: usize,
}

impl Default for AsyncLoadgenConfig {
    fn default() -> Self {
        AsyncLoadgenConfig {
            label: "async-loadgen".into(),
            nodes: 8,
            grid: 2,
            seed: 7,
            workers: 2,
            queue_capacity: 64,
            challenge_pool: 4,
            deadline_s: 2.0,
            honest_connections: 48,
            impostor_connections: 8,
            garbage_connections: 8,
            pipeline: 2,
            rounds_per_stream: 1,
            wire: WireFlavor::Binary,
            max_connections: 10_000,
            dispatch_threads: 4,
            dispatch_queue: 64,
        }
    }
}

impl AsyncLoadgenConfig {
    /// The CI concurrency smoke: 512 multiplexed connections (the full
    /// profile raises this to 10k across two processes) on the binary
    /// wire, pipeline depth 2.
    pub fn smoke() -> Self {
        AsyncLoadgenConfig {
            label: "async-smoke".into(),
            honest_connections: 472,
            impostor_connections: 20,
            garbage_connections: 20,
            ..AsyncLoadgenConfig::default()
        }
    }

    /// Total connections the run opens.
    pub fn connections(&self) -> usize {
        self.honest_connections + self.impostor_connections + self.garbage_connections
    }

    /// Total rounds the run completes.
    pub fn total_rounds(&self) -> usize {
        self.connections() * self.pipeline * self.rounds_per_stream
    }

    /// The impostor hold time: comfortably past the deadline.
    fn impostor_delay(&self) -> Duration {
        Duration::from_secs_f64(self.deadline_s * 1.5 + 0.05)
    }
}

/// The JSON run report for an async run, written under
/// `results/service/`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncLoadgenReport {
    /// Echo of the run configuration.
    pub config: AsyncLoadgenConfig,
    /// Wall-clock duration of the traffic phase, seconds.
    pub duration_s: f64,
    /// Rounds completed across all cohorts.
    pub total_rounds: usize,
    /// Completed rounds per second of traffic.
    pub throughput_rps: f64,
    /// Honest cohort outcome.
    pub honest: CohortReport,
    /// Impostor cohort outcome.
    pub impostor: CohortReport,
    /// Garbage cohort outcome.
    pub garbage: CohortReport,
    /// Transport-level counters from the client engine, including the
    /// correlation-id echo count the smoke gate checks.
    pub mux: MuxStats,
    /// Per-request wire latency (request written → response parsed) in
    /// milliseconds across all cohorts — the serving tier's latency
    /// under concurrent load.
    pub request_latency: Option<SampleSummary>,
    /// The sparse histogram behind [`request_latency`](Self::request_latency).
    pub request_latency_hist: Option<HistogramSnapshot>,
    /// Peak simultaneously-open server connections (from the reactor's
    /// own accounting, scraped after the run).
    pub peak_connections: u64,
    /// Connections the server accepted over the run.
    pub accepted_connections: u64,
    /// Connections reaped for idle/read-deadline timeouts.
    pub reaped_connections: u64,
    /// Requests shed `Overloaded` at the dispatch queue.
    pub shed_requests: u64,
    /// The server's telemetry counters after the run.
    pub server_counters: BTreeMap<String, u64>,
    /// The server's telemetry warnings after the run.
    pub server_warnings: Vec<String>,
    /// Parsed samples from the final Prometheus scrape (validated, and
    /// checked monotone against a scrape taken before traffic).
    pub prometheus_samples: BTreeMap<String, f64>,
    /// The server's SLO assessment after the traffic phase. Recorded,
    /// not gated: a deliberate-overload concurrency run is *expected* to
    /// push the latency and overload objectives past their thresholds.
    pub health: HealthReport,
}

impl AsyncLoadgenReport {
    /// Renders the report as indented JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Checks the invariants the async smoke promises: every honest
    /// round accepted, every impostor round rejected on the deadline,
    /// every garbage round answered with a structured error on a
    /// *surviving* connection, zero transport failures, every binary
    /// response carrying an echoed correlation id, the configured
    /// connection count actually concurrently open on the server, the
    /// reactor's `ppuf_conn_*` / `ppuf_reactor_*` gauges live in the
    /// Prometheus scrape, and the always-on profiler exported at least
    /// one `ppuf_profile_self_seconds_total` sample.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn check_smoke_invariants(&self) -> Result<(), String> {
        let h = &self.honest;
        if h.accepted != h.requests {
            return Err(format!("honest: {}/{} accepted", h.accepted, h.requests));
        }
        let i = &self.impostor;
        if i.rejected_deadline != i.requests {
            return Err(format!(
                "impostor: {}/{} rejected on deadline",
                i.rejected_deadline, i.requests
            ));
        }
        let g = &self.garbage;
        if g.structured_errors != g.requests {
            return Err(format!(
                "garbage: {}/{} answered with structured errors",
                g.structured_errors, g.requests
            ));
        }
        for (name, cohort) in [("honest", h), ("impostor", i), ("garbage", g)] {
            if cohort.io_errors != 0 {
                return Err(format!("{name}: {} transport failures", cohort.io_errors));
            }
        }
        if self.mux.responses == 0 {
            return Err("no response ever arrived".into());
        }
        if self.config.wire == WireFlavor::Binary && self.mux.corr_echoed != self.mux.responses {
            return Err(format!(
                "correlation ids echoed on {}/{} binary responses",
                self.mux.corr_echoed, self.mux.responses
            ));
        }
        let want = self.config.connections() as u64;
        if self.peak_connections < want {
            return Err(format!(
                "peak of {} concurrent connections, {want} configured",
                self.peak_connections
            ));
        }
        if self.server_counters.get("server.cache.hits").copied().unwrap_or(0) == 0 {
            return Err("no verification was served from cache".into());
        }
        for required in [
            "ppuf_conn_open",
            "ppuf_conn_peak",
            "ppuf_conn_accepted_total",
            "ppuf_conn_shed_requests_total",
            "ppuf_reactor_loops_total",
            "ppuf_reactor_events_total",
        ] {
            if !self.prometheus_samples.contains_key(required) {
                return Err(format!("prometheus scrape is missing {required}"));
            }
        }
        if !self
            .prometheus_samples
            .keys()
            .any(|k| k.starts_with("ppuf_profile_self_seconds_total{"))
        {
            return Err("prometheus scrape carries no profile self-time samples".into());
        }
        if !self.server_warnings.is_empty() {
            return Err(format!("server warnings: {:?}", self.server_warnings));
        }
        Ok(())
    }
}

/// Connection role in the async run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Honest,
    Impostor,
    Garbage,
}

/// Where one request stream stands in its current round.
enum Phase {
    /// Will open the next round at the next fill opportunity.
    Ready,
    /// Challenge requested, waiting for it.
    AwaitChallenge { round_start: Instant },
    /// Answer proven, held until `due` (the impostor's simulation gap).
    Hold { nonce: u64, answer: Box<ProverAnswer>, due: Instant, round_start: Instant },
    /// Final request of the round sent, waiting for the reply.
    AwaitReply { round_start: Instant },
    /// Shed `Overloaded`; retries with a fresh round once `due` passes.
    Backoff { due: Instant },
    /// All rounds completed.
    Done,
}

struct StreamState {
    phase: Phase,
    rounds_left: usize,
    retries: usize,
    /// Garbage-case rotation counter.
    case: usize,
}

/// The cohort traffic source/sink plugged into [`mux::drive`].
struct CohortDriver<'a> {
    ppuf: &'a Ppuf,
    wire: WireFlavor,
    pipeline: usize,
    roles: Vec<Role>,
    streams: Vec<StreamState>,
    impostor_delay: Duration,
    /// Streams not yet `Done`.
    remaining: usize,
    honest: CohortStats,
    impostor: CohortStats,
    garbage: CohortStats,
    request_latency: LogHistogram,
}

impl<'a> CohortDriver<'a> {
    fn new(config: &AsyncLoadgenConfig, ppuf: &'a Ppuf) -> Self {
        let mut roles = Vec::with_capacity(config.connections());
        roles.extend(std::iter::repeat_n(Role::Honest, config.honest_connections));
        roles.extend(std::iter::repeat_n(Role::Impostor, config.impostor_connections));
        roles.extend(std::iter::repeat_n(Role::Garbage, config.garbage_connections));
        let streams = (0..roles.len() * config.pipeline)
            .map(|i| StreamState {
                phase: Phase::Ready,
                rounds_left: config.rounds_per_stream,
                retries: 0,
                case: i, // stagger the garbage rotation across streams
            })
            .collect::<Vec<_>>();
        let remaining = streams.len();
        CohortDriver {
            ppuf,
            wire: config.wire,
            pipeline: config.pipeline,
            roles,
            streams,
            impostor_delay: config.impostor_delay(),
            remaining,
            honest: CohortStats::default(),
            impostor: CohortStats::default(),
            garbage: CohortStats::default(),
            request_latency: LogHistogram::default(),
        }
    }

    fn cohort(&mut self, role: Role) -> &mut CohortStats {
        match role {
            Role::Honest => &mut self.honest,
            Role::Impostor => &mut self.impostor,
            Role::Garbage => &mut self.garbage,
        }
    }

    /// Ends the stream's current round and arms the next (or `Done`).
    fn consume_round(&mut self, tag: usize) {
        let stream = &mut self.streams[tag];
        stream.rounds_left -= 1;
        stream.retries = 0;
        if stream.rounds_left == 0 {
            stream.phase = Phase::Done;
            self.remaining -= 1;
        } else {
            stream.phase = Phase::Ready;
        }
    }

    /// One garbage request; every case must come back as a structured
    /// error on a connection that stays up.
    fn garbage_outbound(&self, case: usize, corr: u64) -> Outbound {
        let typed = |case: usize| match case % 2 {
            // a request for a device that does not exist
            0 => Outbound::Request {
                request: Request::GetChallenge { device_id: "no-such-device".into() },
                trace: None,
            },
            // a well-formed answer for a nonce that was never issued
            _ => Outbound::Request {
                request: Request::SubmitAnswer {
                    device_id: DEVICE_ID.into(),
                    nonce: u64::MAX - case as u64,
                    answer: bogus_answer(),
                },
                trace: None,
            },
        };
        match (self.wire, case % 4) {
            // frame-layer-valid, payload garbage — per wire flavor
            (WireFlavor::Json, 0) => {
                let mut frame = Vec::new();
                crate::wire::write_frame(&mut frame, b"\x7bnot json at all")
                    .expect("tiny frame cannot fail");
                Outbound::Raw(frame)
            }
            (WireFlavor::Json, 1) => {
                let mut frame = Vec::new();
                crate::wire::write_frame(&mut frame, b"{\"Bogus\": {\"x\": 1}}")
                    .expect("tiny frame cannot fail");
                Outbound::Raw(frame)
            }
            // well-framed binary, undecodable payload
            (WireFlavor::Binary, 0) => {
                Outbound::Raw(wire2::encode_frame(wire2::opcode::GET_CHALLENGE, corr, &[0xFF; 3]))
            }
            // well-framed binary, unknown opcode
            (WireFlavor::Binary, 1) => Outbound::Raw(wire2::encode_frame(0x55, corr, &[])),
            (_, case) => typed(case),
        }
    }
}

impl Driver for CohortDriver<'_> {
    fn next(&mut self, conn: usize, corr: u64) -> Option<(Outbound, u64)> {
        let role = self.roles[conn];
        let now = Instant::now();
        for s in 0..self.pipeline {
            let tag = conn * self.pipeline + s;
            match &self.streams[tag].phase {
                Phase::Ready => {}
                Phase::Backoff { due } if now >= *due => {}
                Phase::Hold { due, .. } if now >= *due => {
                    let Phase::Hold { nonce, answer, round_start, .. } =
                        std::mem::replace(&mut self.streams[tag].phase, Phase::Ready)
                    else {
                        unreachable!("matched Hold above");
                    };
                    self.streams[tag].phase = Phase::AwaitReply { round_start };
                    return Some((
                        Outbound::Request {
                            request: Request::SubmitAnswer {
                                device_id: DEVICE_ID.into(),
                                nonce,
                                answer: *answer,
                            },
                            trace: None,
                        },
                        tag as u64,
                    ));
                }
                _ => continue,
            }
            // Ready (or expired backoff): open the round
            if role == Role::Garbage {
                let case = self.streams[tag].case;
                self.streams[tag].case = case.wrapping_add(1);
                self.streams[tag].phase = Phase::AwaitReply { round_start: now };
                return Some((self.garbage_outbound(case, corr), tag as u64));
            }
            self.streams[tag].phase = Phase::AwaitChallenge { round_start: now };
            return Some((
                Outbound::Request {
                    request: Request::GetChallenge { device_id: DEVICE_ID.into() },
                    trace: None,
                },
                tag as u64,
            ));
        }
        None
    }

    fn done(
        &mut self,
        conn: usize,
        tag: u64,
        response: Response,
        _trace_echo: Option<u64>,
        latency: Duration,
    ) {
        self.request_latency.record(latency.as_secs_f64() * 1e3);
        let role = self.roles[conn];
        let tag = tag as usize;
        let now = Instant::now();
        let phase = std::mem::replace(&mut self.streams[tag].phase, Phase::Ready);
        // a shed round retries fresh (the session is spent) after the
        // server-suggested backoff — up to the same cap the sync path uses
        if let Response::Error { kind: ErrorKind::Overloaded, retry_after_ms, .. } = &response {
            let backoff = Duration::from_millis(retry_after_ms.unwrap_or(50));
            self.streams[tag].retries += 1;
            let exhausted = self.streams[tag].retries > MAX_OVERLOAD_RETRIES;
            self.cohort(role).overload_retries += 1;
            if exhausted {
                self.cohort(role).requests += 1;
                self.cohort(role).io_errors += 1;
                self.consume_round(tag);
            } else {
                self.streams[tag].phase = Phase::Backoff { due: now + backoff };
            }
            return;
        }
        match phase {
            Phase::AwaitChallenge { round_start } => match response {
                Response::Challenge { nonce, challenge, .. } => {
                    match prove(&self.ppuf.executor(Environment::NOMINAL), &challenge) {
                        Ok(answer) => {
                            let due = match role {
                                Role::Impostor => round_start + self.impostor_delay,
                                _ => now,
                            };
                            self.streams[tag].phase =
                                Phase::Hold { nonce, answer: Box::new(answer), due, round_start };
                        }
                        Err(_) => {
                            self.cohort(role).requests += 1;
                            self.cohort(role).io_errors += 1;
                            self.consume_round(tag);
                        }
                    }
                }
                _ => {
                    self.cohort(role).requests += 1;
                    self.cohort(role).structured_errors += 1;
                    self.consume_round(tag);
                }
            },
            Phase::AwaitReply { round_start } => {
                let round_ms = round_start.elapsed().as_secs_f64() * 1e3;
                let stats = self.cohort(role);
                stats.requests += 1;
                match (role, response) {
                    (Role::Garbage, Response::Error { .. }) => {
                        stats.structured_errors += 1;
                        stats.latency.record(round_ms);
                    }
                    (Role::Garbage, _) => stats.rejected_other += 1,
                    (_, Response::Verdict { accepted: true, .. }) => {
                        stats.accepted += 1;
                        if role == Role::Honest {
                            stats.latency.record(round_ms);
                        }
                    }
                    (_, Response::Verdict { report, .. }) => {
                        if report.within_deadline {
                            stats.rejected_other += 1;
                        } else {
                            stats.rejected_deadline += 1;
                            if role == Role::Impostor {
                                stats.latency.record(round_ms);
                            }
                        }
                    }
                    (_, _) => stats.structured_errors += 1,
                }
                self.consume_round(tag);
            }
            _ => {
                // a response with no request outstanding on this stream
                self.cohort(role).io_errors += 1;
                self.streams[tag].phase = phase;
            }
        }
    }

    fn finished(&self) -> bool {
        self.remaining == 0
    }
}

/// Runs one full async load-generation session: async server up, one
/// multiplexed client over `connections × pipeline` streams, report.
///
/// # Errors
///
/// Returns a message if the device cannot be generated, the server
/// cannot bind, registration fails, or the transport breaks a protocol
/// invariant (the engine treats those as hard errors, not counts).
pub fn run_async_loadgen(config: &AsyncLoadgenConfig) -> Result<AsyncLoadgenReport, String> {
    let service = VerificationService::new(ServiceConfig {
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        deadline: Some(Seconds(config.deadline_s)),
        challenge_pool: config.challenge_pool,
        seed: config.seed,
        ..ServiceConfig::default()
    });
    let mut server = AsyncServer::bind(
        "127.0.0.1:0",
        Arc::new(service),
        AsyncConfig {
            max_connections: config.max_connections,
            dispatch_threads: config.dispatch_threads,
            dispatch_queue: config.dispatch_queue,
            ..AsyncConfig::default()
        },
    )
    .map_err(|e| format!("async server bind failed: {e}"))?;

    let mut report = run_async_loadgen_at(server.local_addr(), config)?;

    // in-process we can replace the scrape-derived transport and counter
    // figures with the server's own accounting
    let transport = Arc::clone(server.stats());
    let mut snapshot = server.service().recorder().snapshot(&config.label);
    server.shutdown();
    for key in ["server.cache.hits", "server.cache.misses", "server.requests.malformed"] {
        snapshot.counters.entry(key.into()).or_insert(0);
    }
    report.peak_connections = transport.peak();
    report.accepted_connections = transport.accepted();
    report.reaped_connections = transport.reaped();
    report.shed_requests = transport.shed_requests();
    report.server_counters = snapshot.counters;
    report.server_warnings = snapshot.warnings;
    Ok(report)
}

/// Drives the async cohorts against a server that is *already
/// listening* at `addr` — the client half of the two-process
/// high-connection-count demonstration (`ppuf_loadgen --serve` in one
/// process, `--connect` in another, each staying inside its own file
/// descriptor budget). Registers the device (derived deterministically
/// from `config.seed`, so either side can recreate it) over the wire-1.x
/// admin path first. Transport figures (`peak_connections`, sheds,
/// reaps) and the cache counters are taken from the server's live
/// Prometheus scrape; warnings are not observable cross-process and
/// report empty.
///
/// # Errors
///
/// See [`run_async_loadgen`].
pub fn run_async_loadgen_at(
    addr: std::net::SocketAddr,
    config: &AsyncLoadgenConfig,
) -> Result<AsyncLoadgenReport, String> {
    let ppuf = Ppuf::generate(PpufConfig::paper(config.nodes, config.grid), config.seed)
        .map_err(|e| format!("device generation failed: {e}"))?;
    let model = ppuf.public_model().map_err(|e| format!("model publication failed: {e}"))?;

    // admin traffic rides the wire-1.x JSON path of the same async
    // server — live proof the compat mode serves blocking clients
    let mut registrar =
        Client::connect(addr).map_err(|e| format!("registration connect failed: {e}"))?;
    match registrar
        .request(&Request::Register { device_id: DEVICE_ID.into(), model })
        .map_err(|e| format!("registration failed: {e}"))?
    {
        Response::Registered { .. } => {}
        other => return Err(format!("registration rejected: {other:?}")),
    }
    let scrape_before = scrape_prometheus(&mut registrar)?;
    drop(registrar);

    let mut driver = CohortDriver::new(config, &ppuf);
    let mux_config = MuxConfig {
        connections: config.connections(),
        pipeline: config.pipeline,
        wire: config.wire,
        ..MuxConfig::default()
    };
    let started = Instant::now();
    let mux_stats = mux::drive(addr, &mux_config, &mut driver)?;
    let duration = started.elapsed().as_secs_f64().max(1e-9);

    let mut scraper =
        Client::connect(addr).map_err(|e| format!("stats scrape connect failed: {e}"))?;
    let prometheus_samples = scrape_prometheus(&mut scraper)?;
    let health = match scraper
        .request(&Request::Health)
        .map_err(|e| format!("health scrape failed: {e}"))?
    {
        Response::Health { report } => report,
        other => return Err(format!("expected health report, got {other:?}")),
    };
    drop(scraper);
    prometheus::check_monotone(&scrape_before, &prometheus_samples)
        .map_err(|e| format!("counter regressed between live scrapes: {e}"))?;

    // cross-process view: transport figures and cache counters come off
    // the live scrape (the in-process wrapper overwrites them with the
    // server's own accounting)
    let sample = |name: &str| prometheus_samples.get(name).copied().unwrap_or(0.0) as u64;
    let mut server_counters = BTreeMap::new();
    server_counters.insert("server.cache.hits".to_string(), sample("ppuf_cache_hits_total"));
    server_counters.insert("server.cache.misses".to_string(), sample("ppuf_cache_misses_total"));

    let CohortDriver { honest, impostor, garbage, request_latency, .. } = driver;
    let total_rounds = honest.requests + impostor.requests + garbage.requests;
    Ok(AsyncLoadgenReport {
        config: config.clone(),
        duration_s: duration,
        total_rounds,
        throughput_rps: total_rounds as f64 / duration,
        honest: honest.into_report(config.honest_connections),
        impostor: impostor.into_report(config.impostor_connections),
        garbage: garbage.into_report(config.garbage_connections),
        mux: mux_stats,
        request_latency: request_latency.summary(),
        request_latency_hist: if request_latency.is_empty() {
            None
        } else {
            Some(request_latency.snapshot())
        },
        peak_connections: sample("ppuf_conn_peak"),
        accepted_connections: sample("ppuf_conn_accepted_total"),
        reaped_connections: sample("ppuf_conn_reaped_total"),
        shed_requests: sample("ppuf_conn_shed_requests_total"),
        server_counters,
        server_warnings: Vec::new(),
        prometheus_samples,
        health,
    })
}
