//! Per-connection state machine for the async serving tier.
//!
//! A [`Conn`] owns one nonblocking socket plus its growable read/write
//! buffers and does everything that does not require the service: it
//! sniffs the wire mode off the first byte ([`WireMode`]), parses as many
//! complete frames as the read buffer holds (pipelining), and encodes
//! completed responses back out — out of order for the binary wire
//! (responses carry correlation ids), strictly in request order for the
//! JSON wire (wire 1.x has no correlation id, so its in-order contract is
//! part of byte-identical compatibility). The event loop in
//! [`crate::reactor`] owns readiness, dispatch, and lifecycle.
//!
//! [`TransportStats`] is the transport-tier counter block shared between
//! the reactor and the service's Prometheus exposition (`ppuf_conn_*` /
//! `ppuf_reactor_*` gauges).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ppuf_telemetry::TraceId;

use crate::wire::{self, Request, Response, TracedRequest, TracedResponse, MAX_FRAME_LEN};
use crate::wire2::{self, Frame2Error};

/// How big one nonblocking read chunk is.
const READ_CHUNK: usize = 16 * 1024;

/// Transport-tier counters, shared (lock-free) between the reactor
/// thread, the dispatch threads, and the service's stats exposition.
#[derive(Debug, Default)]
pub struct TransportStats {
    open: AtomicU64,
    peak: AtomicU64,
    accepted: AtomicU64,
    closed: AtomicU64,
    /// Connections refused at accept because the open-connection cap was
    /// reached.
    rejected: AtomicU64,
    /// Connections reaped by the idle-timeout / read-deadline sweep.
    reaped: AtomicU64,
    /// Requests answered `Overloaded` by the reactor because the dispatch
    /// queue was full (never reached the service).
    shed_requests: AtomicU64,
    requests_json: AtomicU64,
    requests_binary: AtomicU64,
    loop_iterations: AtomicU64,
    readiness_events: AtomicU64,
}

impl TransportStats {
    /// Fresh, all-zero counter block.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn conn_opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let now_open = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now_open, Ordering::Relaxed);
    }

    pub(crate) fn conn_closed(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn conn_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn conn_reaped(&self) {
        self.reaped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_shed(&self) {
        self.shed_requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_parsed(&self, mode: WireMode) {
        match mode {
            WireMode::Binary => self.requests_binary.fetch_add(1, Ordering::Relaxed),
            _ => self.requests_json.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub(crate) fn loop_tick(&self, events: usize) {
        self.loop_iterations.fetch_add(1, Ordering::Relaxed);
        self.readiness_events.fetch_add(events as u64, Ordering::Relaxed);
    }

    /// Currently open connections.
    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously open connections.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Total connections accepted.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Total connections refused at the open-connection cap.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Total connections reaped by the timeout sweep.
    pub fn reaped(&self) -> u64 {
        self.reaped.load(Ordering::Relaxed)
    }

    /// Total requests shed with `Overloaded` before reaching the service.
    pub fn shed_requests(&self) -> u64 {
        self.shed_requests.load(Ordering::Relaxed)
    }

    /// The transport gauge list merged into the service's Prometheus
    /// exposition.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        [
            ("ppuf_conn_open", self.open.load(Ordering::Relaxed)),
            ("ppuf_conn_peak", self.peak.load(Ordering::Relaxed)),
            ("ppuf_conn_accepted_total", self.accepted.load(Ordering::Relaxed)),
            ("ppuf_conn_closed_total", self.closed.load(Ordering::Relaxed)),
            ("ppuf_conn_rejected_total", self.rejected.load(Ordering::Relaxed)),
            ("ppuf_conn_reaped_total", self.reaped.load(Ordering::Relaxed)),
            ("ppuf_conn_shed_requests_total", self.shed_requests.load(Ordering::Relaxed)),
            ("ppuf_conn_requests_json_total", self.requests_json.load(Ordering::Relaxed)),
            ("ppuf_conn_requests_binary_total", self.requests_binary.load(Ordering::Relaxed)),
            ("ppuf_reactor_loops_total", self.loop_iterations.load(Ordering::Relaxed)),
            ("ppuf_reactor_events_total", self.readiness_events.load(Ordering::Relaxed)),
        ]
        .into_iter()
        .map(|(name, value)| (name.to_string(), value as f64))
        .collect()
    }
}

/// Which protocol a connection speaks, decided by its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// No byte received yet.
    Unknown,
    /// Wire 1.x length-prefixed JSON (first byte `0x00`/`0x01`).
    Json,
    /// Wire 2.0 binary frames (first byte `0xB5`).
    Binary,
}

/// Why a connection ended (the `reason` attribute on its closing
/// `server.conn` span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer closed cleanly and every response was flushed.
    Eof,
    /// First byte was neither a JSON length prefix nor the wire-2.0 magic.
    Garbage,
    /// The frame layer was unrecoverably corrupt (bad magic/version
    /// mid-stream, oversized length).
    Frame(String),
    /// A read or write failed.
    Io(String),
    /// Buffered response bytes exceeded the write-backlog cap: the peer
    /// pipelines requests but does not read responses.
    Backpressure,
    /// No request activity within the idle timeout.
    IdleTimeout,
    /// A frame stayed half-written past the read deadline (slow-loris).
    ReadDeadline,
    /// Server shutdown.
    Shutdown,
}

impl CloseReason {
    /// Short label for span attributes and logs.
    pub fn label(&self) -> &'static str {
        match self {
            CloseReason::Eof => "eof",
            CloseReason::Garbage => "garbage",
            CloseReason::Frame(_) => "frame_error",
            CloseReason::Io(_) => "io_error",
            CloseReason::Backpressure => "backpressure",
            CloseReason::IdleTimeout => "idle_timeout",
            CloseReason::ReadDeadline => "read_deadline",
            CloseReason::Shutdown => "shutdown",
        }
    }
}

/// Response-routing key: everything needed to encode a response for the
/// request it answers, independent of arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corr {
    /// JSON request `seq` (per-connection arrival index — responses flush
    /// in this order); `trace_echo` holds the trace id to echo back iff
    /// the client sent a wire-1.1 envelope.
    Json {
        /// Per-connection arrival index.
        seq: u64,
        /// Trace id to echo in a `TracedResponse` (None → bare wire 1.0).
        trace_echo: Option<u64>,
    },
    /// Binary correlation id, echoed verbatim.
    Binary(u64),
}

/// One parsed inbound item, ready for dispatch (or an immediate answer).
#[derive(Debug)]
pub enum Inbound {
    /// A well-formed request to hand to the service.
    Request {
        /// Response-routing key.
        corr: Corr,
        /// The decoded request.
        request: Request,
        /// The trace to run it under (client-adopted or the connection
        /// trace).
        trace: TraceId,
    },
    /// A frame whose payload did not decode: answered `Malformed` without
    /// dispatch, connection stays up (the wire 1.x contract).
    Malformed {
        /// Response-routing key.
        corr: Corr,
        /// Decoder detail for the error message.
        message: String,
    },
}

/// One connection owned by the reactor.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// Slot-reuse guard: completions carry (slot, gen) and are dropped if
    /// the slot was recycled.
    pub(crate) gen: u64,
    /// The connection's own trace: un-enveloped requests run under it, so
    /// a connection's `server.request` trees share one trace with its
    /// closing `server.conn` root span.
    pub(crate) trace: TraceId,
    pub(crate) opened: Instant,
    mode: WireMode,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Requests handed to dispatch whose responses have not been encoded
    /// yet.
    pub(crate) in_flight: usize,
    next_seq: u64,
    flush_seq: u64,
    /// JSON responses completed out of order, waiting for their turn.
    pending_json: BTreeMap<u64, Vec<u8>>,
    pub(crate) last_activity: Instant,
    /// Set while a partial frame sits in `read_buf` — the read-deadline
    /// clock for slow-loris reaping.
    pub(crate) frame_since: Option<Instant>,
    /// Total requests parsed on this connection (span attribute).
    pub(crate) requests: u64,
    /// Peer sent EOF; close once in-flight responses are flushed.
    pub(crate) draining: bool,
}

impl Conn {
    /// Wraps an accepted, already-nonblocking stream.
    pub(crate) fn new(stream: TcpStream, trace: TraceId, now: Instant) -> Self {
        Conn {
            stream,
            gen: 0,
            trace,
            opened: now,
            mode: WireMode::Unknown,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: 0,
            next_seq: 0,
            flush_seq: 0,
            pending_json: BTreeMap::new(),
            last_activity: now,
            frame_since: None,
            requests: 0,
            draining: false,
        }
    }

    /// The wire mode negotiated so far.
    pub(crate) fn mode(&self) -> WireMode {
        self.mode
    }

    /// `true` when buffered response bytes are waiting on socket
    /// writability.
    pub(crate) fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Buffered response bytes not yet written to the socket — the
    /// reactor closes the connection when this passes its backlog cap.
    pub(crate) fn backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// `true` once the connection has nothing left to do: peer is gone
    /// and every accepted request has been answered and flushed.
    pub(crate) fn drained(&self) -> bool {
        self.draining && self.in_flight == 0 && !self.wants_write() && self.pending_json.is_empty()
    }

    /// Nonblocking read pump: pulls everything available off the socket,
    /// then parses as many complete frames as arrived.
    ///
    /// `Ok(items)` may be empty (partial frame). An `Err` is a close
    /// verdict, not an I/O result — the reactor tears the connection down.
    pub(crate) fn on_readable(&mut self, now: Instant) -> Result<Vec<Inbound>, CloseReason> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.draining = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    // level-triggered: a short read means the socket is
                    // drained, no point issuing another syscall
                    if n < READ_CHUNK {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(CloseReason::Io(e.to_string())),
            }
        }
        self.parse(now)
    }

    /// Parses every complete frame currently buffered.
    fn parse(&mut self, now: Instant) -> Result<Vec<Inbound>, CloseReason> {
        if self.mode == WireMode::Unknown && !self.read_buf.is_empty() {
            self.mode = match self.read_buf[0] {
                b if b == wire2::MAGIC[0] => WireMode::Binary,
                // a JSON length prefix under the 16 MiB cap starts 0x00/0x01
                0x00 | 0x01 => WireMode::Json,
                _ => return Err(CloseReason::Garbage),
            };
        }
        let mut items = Vec::new();
        let mut consumed = 0usize;
        let result = match self.mode {
            WireMode::Unknown => Ok(()),
            WireMode::Binary => self.parse_binary(&mut items, &mut consumed),
            WireMode::Json => self.parse_json(&mut items, &mut consumed),
        };
        if consumed > 0 {
            self.read_buf.drain(..consumed);
            self.last_activity = now;
        }
        // a leftover partial frame starts (or keeps) the read-deadline
        // clock; an empty buffer clears it
        self.frame_since =
            if self.read_buf.is_empty() { None } else { Some(self.frame_since.unwrap_or(now)) };
        self.requests += items.len() as u64;
        result.map(|()| items)
    }

    fn parse_binary(
        &mut self,
        items: &mut Vec<Inbound>,
        consumed: &mut usize,
    ) -> Result<(), CloseReason> {
        loop {
            match wire2::parse_frame(&self.read_buf[*consumed..]) {
                Ok(None) => return Ok(()),
                Ok(Some((frame, used))) => {
                    *consumed += used;
                    let corr = Corr::Binary(frame.corr);
                    match wire2::decode_request(&frame) {
                        Ok(request) => {
                            items.push(Inbound::Request { corr, request, trace: self.trace });
                        }
                        Err(e) => items.push(Inbound::Malformed { corr, message: e.to_string() }),
                    }
                }
                Err(e @ (Frame2Error::BadMagic(_) | Frame2Error::BadVersion(_))) => {
                    return Err(CloseReason::Frame(e.to_string()));
                }
                Err(e @ Frame2Error::Oversized(_)) => {
                    return Err(CloseReason::Frame(e.to_string()))
                }
            }
        }
    }

    fn parse_json(
        &mut self,
        items: &mut Vec<Inbound>,
        consumed: &mut usize,
    ) -> Result<(), CloseReason> {
        loop {
            let buf = &self.read_buf[*consumed..];
            if buf.len() < 4 {
                return Ok(());
            }
            let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_LEN {
                return Err(CloseReason::Frame(format!(
                    "frame length {len} exceeds cap {MAX_FRAME_LEN}"
                )));
            }
            if buf.len() < 4 + len {
                return Ok(());
            }
            let payload = &buf[4..4 + len];
            *consumed += 4 + len;
            let seq = self.next_seq;
            self.next_seq += 1;
            let parsed: io::Result<TracedRequest> = std::str::from_utf8(payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                .and_then(|text| {
                    serde_json::from_str(text)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                });
            match parsed {
                Ok(envelope) => {
                    // adopt the client's trace id when it sent one; bare
                    // requests join the connection's own trace
                    let trace_echo = envelope.trace_id;
                    let trace = envelope.trace_id.and_then(TraceId::from_raw).unwrap_or(self.trace);
                    items.push(Inbound::Request {
                        corr: Corr::Json { seq, trace_echo },
                        request: envelope.body,
                        trace,
                    });
                }
                Err(e) => items.push(Inbound::Malformed {
                    corr: Corr::Json { seq, trace_echo: None },
                    message: e.to_string(),
                }),
            }
        }
    }

    /// Encodes `response` for the request addressed by `corr` and queues
    /// the bytes. Binary responses go out as completed (the correlation
    /// id does the matching); JSON responses are buffered until every
    /// earlier JSON request has answered, preserving the wire-1.x
    /// in-order contract.
    pub(crate) fn complete(&mut self, corr: Corr, response: &Response) {
        match corr {
            Corr::Binary(id) => {
                let frame = wire2::encode_response(id, response);
                self.write_buf.extend_from_slice(&frame);
            }
            Corr::Json { seq, trace_echo } => {
                let bytes = json_frame(trace_echo, response);
                self.pending_json.insert(seq, bytes);
                while let Some(bytes) = self.pending_json.remove(&self.flush_seq) {
                    self.write_buf.extend_from_slice(&bytes);
                    self.flush_seq += 1;
                }
            }
        }
    }

    /// Nonblocking write pump: pushes buffered bytes until the socket
    /// would block or the buffer empties. Write progress counts as
    /// activity, so only a peer that stops draining responses idles out.
    pub(crate) fn on_writable(&mut self, now: Instant) -> Result<(), CloseReason> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(CloseReason::Io("socket wrote 0 bytes".into())),
                Ok(n) => {
                    self.write_pos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(CloseReason::Io(e.to_string())),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > READ_CHUNK {
            // reclaim flushed prefix without waiting for a full drain
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        Ok(())
    }

    /// The underlying socket, for registration with the poller.
    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

/// Encodes one wire-1.x response frame: enveloped iff the request was.
fn json_frame(trace_echo: Option<u64>, response: &Response) -> Vec<u8> {
    let mut bytes = Vec::new();
    let sent = match trace_echo {
        Some(id) => wire::send_message(&mut bytes, &TracedResponse::traced(id, response.clone())),
        None => wire::send_message(&mut bytes, response),
    };
    debug_assert!(sent.is_ok(), "Vec writes cannot fail and responses always serialize");
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ErrorKind;
    use std::net::{TcpListener, TcpStream};

    fn test_conn() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        (Conn::new(stream, ppuf_telemetry::next_trace_id(), Instant::now()), peer)
    }

    /// Feeds bytes through the peer socket and runs the read pump.
    fn feed(
        conn: &mut Conn,
        peer: &mut TcpStream,
        bytes: &[u8],
    ) -> Result<Vec<Inbound>, CloseReason> {
        use std::io::Write as _;
        peer.write_all(bytes).unwrap();
        peer.flush().unwrap();
        // loopback delivery is fast but not instant
        for _ in 0..50 {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let items = conn.on_readable(Instant::now())?;
            if !items.is_empty() || conn.mode() != WireMode::Unknown {
                return Ok(items);
            }
        }
        conn.on_readable(Instant::now())
    }

    #[test]
    fn first_byte_negotiates_the_wire_mode() {
        let (mut conn, mut peer) = test_conn();
        let frame = wire2::encode_frame(wire2::opcode::PING, 42, b"");
        let items = feed(&mut conn, &mut peer, &frame).unwrap();
        assert_eq!(conn.mode(), WireMode::Binary);
        assert!(matches!(
            items.as_slice(),
            [Inbound::Request { corr: Corr::Binary(42), request: Request::Ping, .. }]
        ));

        let (mut conn, mut peer) = test_conn();
        let mut json = Vec::new();
        wire::send_message(&mut json, &Request::Ping).unwrap();
        let items = feed(&mut conn, &mut peer, &json).unwrap();
        assert_eq!(conn.mode(), WireMode::Json);
        assert!(matches!(
            items.as_slice(),
            [Inbound::Request {
                corr: Corr::Json { seq: 0, trace_echo: None },
                request: Request::Ping,
                ..
            }]
        ));

        let (mut conn, mut peer) = test_conn();
        assert!(matches!(
            feed(&mut conn, &mut peer, b"GET / HTTP/1.1\r\n"),
            Err(CloseReason::Garbage)
        ));
    }

    #[test]
    fn json_responses_flush_in_request_order_binary_as_completed() {
        let (mut conn, mut peer) = test_conn();
        let mut json = Vec::new();
        wire::send_message(&mut json, &Request::Ping).unwrap();
        wire::send_message(&mut json, &Request::Ping).unwrap();
        let items = feed(&mut conn, &mut peer, &json).unwrap();
        assert_eq!(items.len(), 2);
        // completing seq 1 first buffers it; nothing hits the wire queue
        conn.complete(Corr::Json { seq: 1, trace_echo: None }, &Response::Pong);
        assert!(!conn.wants_write(), "out-of-order JSON response must wait");
        conn.complete(
            Corr::Json { seq: 0, trace_echo: None },
            &Response::error(ErrorKind::Internal, "x"),
        );
        assert!(conn.wants_write(), "in-order completion releases both");
        // the queued bytes decode as: seq 0's error, then seq 1's pong
        let mut cursor = io::Cursor::new(conn.write_buf.clone());
        let first: Response = wire::recv_message(&mut cursor).unwrap().unwrap();
        let second: Response = wire::recv_message(&mut cursor).unwrap().unwrap();
        assert!(matches!(first, Response::Error { .. }));
        assert_eq!(second, Response::Pong);

        // binary mode: whatever completes first goes out first
        let (mut conn, mut peer) = test_conn();
        let frame = wire2::encode_frame(wire2::opcode::PING, 7, b"");
        feed(&mut conn, &mut peer, &frame).unwrap();
        conn.complete(Corr::Binary(99), &Response::Pong);
        assert!(conn.wants_write(), "binary completions never wait");
    }

    #[test]
    fn torn_frames_keep_state_and_start_the_deadline_clock() {
        let (mut conn, mut peer) = test_conn();
        let frame = wire2::encode_frame(wire2::opcode::GET_CHALLENGE, 5, &{
            let mut enc = Vec::new();
            enc.extend_from_slice(&5u16.to_le_bytes());
            enc.extend_from_slice(b"dev-0");
            enc
        });
        // drip the frame in three fragments; only the last completes it
        let (a, rest) = frame.split_at(7);
        let (b, c) = rest.split_at(6);
        assert!(feed(&mut conn, &mut peer, a).unwrap().is_empty());
        assert!(conn.frame_since.is_some(), "partial frame arms the read deadline");
        assert!(feed(&mut conn, &mut peer, b).unwrap().is_empty());
        let items = feed(&mut conn, &mut peer, c).unwrap();
        assert!(matches!(
            items.as_slice(),
            [Inbound::Request { request: Request::GetChallenge { .. }, .. }]
        ));
        assert!(conn.frame_since.is_none(), "complete frame disarms the deadline");
    }

    #[test]
    fn malformed_payload_is_answerable_without_dispatch() {
        // binary frame with a valid header but a garbage GetChallenge body
        let (mut conn, mut peer) = test_conn();
        let frame = wire2::encode_frame(wire2::opcode::GET_CHALLENGE, 3, &[0xFF, 0xFF, 0x00]);
        let items = feed(&mut conn, &mut peer, &frame).unwrap();
        assert!(matches!(items.as_slice(), [Inbound::Malformed { corr: Corr::Binary(3), .. }]));
        // json frame with unparseable payload
        let (mut conn, mut peer) = test_conn();
        let mut bytes = Vec::new();
        wire::write_frame(&mut bytes, b"not json").unwrap();
        let items = feed(&mut conn, &mut peer, &bytes).unwrap();
        assert!(matches!(
            items.as_slice(),
            [Inbound::Malformed { corr: Corr::Json { seq: 0, .. }, .. }]
        ));
    }

    #[test]
    fn transport_stats_track_peak_and_open() {
        let stats = TransportStats::new();
        stats.conn_opened();
        stats.conn_opened();
        stats.conn_closed();
        stats.conn_opened();
        assert_eq!(stats.open(), 2);
        assert_eq!(stats.peak(), 2);
        assert_eq!(stats.accepted(), 3);
        let gauges = stats.gauges();
        let get = |name: &str| gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("ppuf_conn_open"), Some(2.0));
        assert_eq!(get("ppuf_conn_peak"), Some(2.0));
        assert_eq!(get("ppuf_conn_accepted_total"), Some(3.0));
    }
}
