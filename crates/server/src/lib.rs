//! Verification service for max-flow PPUFs: the DAC'16 protocol as an
//! online, multi-device system.
//!
//! The paper's authentication loop (`ppuf-core::protocol`) checks one
//! answer for one device. This crate wraps it in the machinery a real
//! deployment needs:
//!
//! - a [`DeviceRegistry`] mapping device ids to
//!   published [`PublicModel`](ppuf_core::public_model::PublicModel)s,
//!   with live registration and revocation;
//! - a per-device [`ChallengeIssuer`](ppuf_core::protocol::issuer) minting
//!   nonce-bound, deadline-stamped challenges and rejecting replays and
//!   expired sessions;
//! - a [`WorkerPool`] of verifier threads behind a
//!   bounded queue with explicit backpressure (`Overloaded` + retry hint
//!   instead of unbounded buffering);
//! - a sharded [`VerificationCache`] so a
//!   repeated (device, challenge, answer) triple skips the residual-BFS
//!   optimality passes;
//! - a length-prefixed JSON-over-TCP front-end ([`tcp::PpufServer`] /
//!   [`tcp::Client`]) on `std::net`;
//! - a [`loadgen`] module driving concurrent honest, impostor, and
//!   garbage clients over real sockets and reporting throughput and
//!   latency percentiles.
//!
//! Everything is instrumented through `ppuf-telemetry`; a service's
//! recorder snapshot lands in the load-generation reports under
//! `results/service/`.
//!
//! # Quick tour
//!
//! ```
//! use std::sync::Arc;
//! use ppuf_core::device::{Ppuf, PpufConfig};
//! use ppuf_core::protocol::auth::prove;
//! use ppuf_analog::variation::Environment;
//! use ppuf_server::service::{ServiceConfig, VerificationService};
//! use ppuf_server::tcp::{Client, PpufServer};
//! use ppuf_server::wire::{Request, Response};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ppuf = Ppuf::generate(PpufConfig::paper(6, 2), 1)?;
//! let service = Arc::new(VerificationService::new(ServiceConfig::default()));
//! let server = PpufServer::bind("127.0.0.1:0", service)?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! client.request(&Request::Register {
//!     device_id: "chip-1".into(),
//!     model: ppuf.public_model()?,
//! })?;
//! let Response::Challenge { nonce, challenge, .. } =
//!     client.request(&Request::GetChallenge { device_id: "chip-1".into() })?
//! else { panic!("expected a challenge") };
//! let answer = prove(&ppuf.executor(Environment::NOMINAL), &challenge)?;
//! let Response::Verdict { accepted, .. } = client.request(&Request::SubmitAnswer {
//!     device_id: "chip-1".into(),
//!     nonce,
//!     answer,
//! })? else { panic!("expected a verdict") };
//! assert!(accepted);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod conn;
pub mod health;
pub mod loadgen;
pub mod mux;
pub mod pool;
pub mod reactor;
pub mod registry;
pub mod service;
pub mod tcp;
pub mod wire;
pub mod wire2;

pub use cache::VerificationCache;
pub use health::{
    HealthReport, HealthStatus, HealthTracker, RequestOutcome, SloConfig, SloVerdict,
};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use pool::{SubmitError, VerifyOutcome, WorkerPool};
pub use reactor::{AsyncConfig, AsyncServer};
pub use registry::{DeviceEntry, DeviceRegistry};
pub use service::{ServiceConfig, VerificationService};
pub use tcp::{Client, PpufServer};
pub use wire::{ErrorKind, Request, Response};
