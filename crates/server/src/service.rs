//! The verification service: request dispatch over registry, issuer,
//! worker pool, and cache.
//!
//! Transport-agnostic — [`VerificationService::handle`] maps one
//! [`Request`] to one [`Response`] and is called by the TCP front-end
//! ([`crate::tcp`]) and directly by tests. The deadline check lives
//! *here*, not in the workers: workers produce timeless verdicts (so the
//! cache can reuse them across sessions) and the service compares each
//! session's measured elapsed time against the configured deadline.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel::bounded;

use ppuf_analog::solver::{Circuit, DcEngine, DcOptions, EngineOptions};
use ppuf_analog::units::{Amps, Celsius, Seconds, Volts};
use ppuf_analog::TwoTerminal;
use ppuf_core::challenge::ChallengeSpace;
use ppuf_core::protocol::auth::{Verifier, VERIFY_TOLERANCE};
use ppuf_core::protocol::clock::{Clock, SystemClock};
use ppuf_core::protocol::issuer::{ChallengeIssuer, RedeemError, DEFAULT_SESSION_TTL};
use ppuf_core::public_model::PublicModel;
use ppuf_telemetry::{
    next_trace_id, prometheus, FlightRecorder, MemoryRecorder, Profiler, Recorder, Report,
    SpanContext, TraceId, TracedSpan, DEFAULT_FLIGHT_EVENTS, DEFAULT_FLIGHT_TRACES,
};

use crate::cache::VerificationCache;
use crate::health::{HealthTracker, RequestOutcome, SloConfig};
use crate::pool::{SubmitError, VerifyJob, WorkerPool};
use crate::registry::{DeviceEntry, DeviceRegistry};
use crate::wire::{ErrorKind, ProfileFormat, Request, Response, StatsFormat};

/// Tunables for one [`VerificationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Verifier worker threads.
    pub workers: usize,
    /// Bounded verification queue length; a full queue sheds load with
    /// `Overloaded` responses.
    pub queue_capacity: usize,
    /// Threads each verifier uses for its residual-BFS passes.
    pub verify_threads: usize,
    /// Answer deadline (the ESG enforcement knob); `None` disables the
    /// timing check.
    pub deadline: Option<Seconds>,
    /// Unanswered sessions expire after this long.
    pub session_ttl: Seconds,
    /// Absolute current tolerance for the flow checks.
    pub tolerance: f64,
    /// Per-device rotating challenge pool size; 0 mints a fresh random
    /// challenge per session (which makes the verification cache useless,
    /// since honest answers then never repeat).
    pub challenge_pool: usize,
    /// Verification cache shard count.
    pub cache_shards: usize,
    /// Verification cache entries per shard.
    pub cache_capacity: usize,
    /// Backoff hint attached to `Overloaded` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Seed for per-device challenge sampling and nonce salting.
    pub seed: u64,
    /// SLO thresholds and sliding-window geometry for the health surface.
    pub slo: SloConfig,
    /// Flight-recorder trace ring capacity; 0 disables the recorder.
    pub flightrec_traces: usize,
    /// Flight-recorder black-box event ring capacity.
    pub flightrec_events: usize,
    /// Directory for post-mortem dumps; `None` keeps the recorder
    /// in-memory only (admin `Dump` then returns the counts but no path).
    pub flightrec_dir: Option<String>,
    /// Flow-rejections plus internal errors in the SLO window at which
    /// the failure-burst trigger fires a flight-recorder dump.
    pub failure_burst_threshold: u64,
    /// Overloaded responses in the SLO window at which the
    /// pool-saturation trigger fires a flight-recorder dump.
    pub saturation_threshold: u64,
    /// Newest post-mortem dumps kept on disk per dump directory; older
    /// files are rotated out after each write. 0 disables rotation.
    pub flightrec_keep: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            verify_threads: 1,
            deadline: None,
            session_ttl: DEFAULT_SESSION_TTL,
            tolerance: VERIFY_TOLERANCE,
            challenge_pool: 0,
            cache_shards: 8,
            cache_capacity: 1024,
            retry_after_ms: 50,
            seed: 0,
            slo: SloConfig::default(),
            flightrec_traces: DEFAULT_FLIGHT_TRACES,
            flightrec_events: DEFAULT_FLIGHT_EVENTS,
            flightrec_dir: None,
            failure_burst_threshold: 8,
            saturation_threshold: 8,
            flightrec_keep: DEFAULT_FLIGHTREC_KEEP,
        }
    }
}

/// Default [`ServiceConfig::flightrec_keep`]: dumps retained per
/// directory before rotation deletes the oldest.
pub const DEFAULT_FLIGHTREC_KEEP: usize = 16;

/// A running verification service (without a transport).
#[derive(Debug)]
pub struct VerificationService {
    config: ServiceConfig,
    registry: DeviceRegistry,
    cache: Arc<VerificationCache>,
    pool: WorkerPool,
    recorder: Arc<MemoryRecorder>,
    /// The always-on call-path profiler; fed by the recorder's finished
    /// traces and by the analog/maxflow/reactor phase instrumentation.
    profiler: Arc<Profiler>,
    clock: Arc<dyn Clock>,
    health: HealthTracker,
    flight: FlightRecorder,
    dump_seq: AtomicU64,
    /// Last dump time per trigger label — throttles each trigger to at
    /// most one dump per SLO window.
    dump_last: Mutex<std::collections::BTreeMap<&'static str, f64>>,
    /// Transport-tier counters (set by the async front-end); their
    /// `ppuf_conn_*` gauges join the Prometheus exposition.
    transport: Mutex<Option<Arc<crate::conn::TransportStats>>>,
}

impl VerificationService {
    /// Builds a service (spawning its worker threads) on the system clock.
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// Builds a service whose session timing runs on `clock` — tests pass
    /// a [`ManualClock`](ppuf_core::protocol::clock::ManualClock) to
    /// exercise deadlines and expiry without sleeping.
    pub fn with_clock(config: ServiceConfig, clock: Arc<dyn Clock>) -> Self {
        let cache = Arc::new(VerificationCache::new(config.cache_shards, config.cache_capacity));
        let profiler = Arc::new(Profiler::new());
        let mut recorder = MemoryRecorder::new();
        recorder.set_profiler(Arc::clone(&profiler));
        let recorder = Arc::new(recorder);
        warm_start_preflight(recorder.as_ref());
        let pool = WorkerPool::new(
            config.workers,
            config.queue_capacity,
            Arc::clone(&cache),
            Arc::clone(&recorder),
        );
        let health = HealthTracker::new(config.slo.clone());
        let flight = if config.flightrec_traces == 0 {
            FlightRecorder::disabled()
        } else {
            FlightRecorder::new(config.flightrec_traces, config.flightrec_events)
        };
        VerificationService {
            config,
            registry: DeviceRegistry::new(),
            cache,
            pool,
            recorder,
            profiler,
            clock,
            health,
            flight,
            dump_seq: AtomicU64::new(0),
            dump_last: Mutex::new(std::collections::BTreeMap::new()),
            transport: Mutex::new(None),
        }
    }

    /// Attaches a transport counter block (called by
    /// [`AsyncServer::bind`](crate::reactor::AsyncServer::bind)); its
    /// gauges appear in every later Prometheus scrape. A second
    /// attachment replaces the first.
    pub fn attach_transport(&self, stats: Arc<crate::conn::TransportStats>) {
        *self.transport.lock().expect("transport lock") = Some(stats);
    }

    /// The service's telemetry recorder (counters, spans, warnings).
    pub fn recorder(&self) -> &Arc<MemoryRecorder> {
        &self.recorder
    }

    /// The always-on call-path profiler behind [`Request::Profile`];
    /// transports hand it to their reactor loops for phase attribution.
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.profiler
    }

    /// The sliding-window SLO tracker behind [`Request::Health`].
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The flight recorder behind [`Request::Dump`] and the dump
    /// triggers.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The device registry.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Dispatches one request under a fresh trace id.
    pub fn handle(&self, request: Request) -> Response {
        self.handle_traced(request, next_trace_id())
    }

    /// Dispatches one request, recording a `server.request` root span in
    /// trace `trace`. The TCP front-end passes the id it assigned (or
    /// adopted from the client) at accept time; every span the request
    /// produces — including worker-side `server.queue_wait` /
    /// `server.verify` spans from [`crate::pool`] — lands under it.
    pub fn handle_traced(&self, request: Request, trace: TraceId) -> Response {
        self.recorder.counter_add("server.requests", 1);
        let kind = request_kind(&request);
        let started = Instant::now();
        // scoped so the root span closes (and its FinishedSpan lands in
        // the recorder) before the flight recorder harvests the trace
        let response = {
            let mut root = TracedSpan::root(self.recorder.as_ref(), "server.request", trace);
            root.attr("kind", kind);
            match request {
                Request::Register { device_id, model } => self.register(device_id, model),
                Request::Revoke { device_id } => self.revoke(&device_id),
                Request::GetChallenge { device_id } => self.get_challenge(&device_id),
                Request::SubmitAnswer { device_id, nonce, answer } => {
                    self.submit_answer(&device_id, nonce, answer, root.context())
                }
                Request::Ping => Response::Pong,
                Request::Stats { format } => self.stats(format),
                Request::Health => self.health_response(),
                Request::Dump => self.dump_response(),
                Request::Profile { format } => self.profile_response(format),
            }
        };
        self.observe(kind, trace, started.elapsed().as_secs_f64(), &response);
        response
    }

    /// Post-dispatch accounting: classifies the finished request into the
    /// SLO window, feeds the flight recorder, and checks dump triggers.
    fn observe(&self, kind: &'static str, trace: TraceId, latency_s: f64, response: &Response) {
        let outcome = classify(response);
        let now = self.clock.now().value();
        self.health.record(now, latency_s, outcome);
        if self.flight.enabled() && kind == "SubmitAnswer" {
            self.flight.push_trace(outcome_label(outcome), self.recorder.trace_spans(trace));
            match outcome {
                RequestOutcome::Overloaded => {
                    self.flight.push_event("server.overloaded", &[now, latency_s]);
                }
                RequestOutcome::InternalError => {
                    self.flight.push_event("server.internal_error", &[now, latency_s]);
                }
                _ => {}
            }
        }
        self.check_triggers(now);
    }

    /// Fires a black-box dump when the SLO window crosses a trigger
    /// threshold: a burst of flow rejections / internal errors, or a run
    /// of overload sheds. Each trigger dumps at most once per window.
    fn check_triggers(&self, now: f64) {
        if !self.flight.enabled() || self.config.flightrec_dir.is_none() {
            return;
        }
        let totals = self.health.window_totals(now);
        if totals.rejected_flow + totals.internal_errors >= self.config.failure_burst_threshold {
            self.triggered_dump("failure-burst", now);
        }
        if totals.overloaded >= self.config.saturation_threshold {
            self.triggered_dump("pool-saturation", now);
        }
    }

    fn triggered_dump(&self, label: &'static str, now: f64) {
        {
            let mut last = self.dump_last.lock().unwrap_or_else(|e| e.into_inner());
            match last.get(label) {
                Some(&at) if now - at < self.config.slo.window_s => return,
                _ => {
                    last.insert(label, now);
                }
            }
        }
        self.recorder.counter_add("flightrec.triggers.fired", 1);
        let report = self.flight.dump(label);
        self.write_dump(label, &report);
    }

    /// Writes one post-mortem report under the configured dump directory,
    /// returning the path (or `None` when no directory is configured or
    /// the write fails — counted, never fatal to the request path).
    fn write_dump(&self, label: &str, report: &Report) -> Option<String> {
        let dir = self.config.flightrec_dir.as_deref()?;
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let path = std::path::Path::new(dir).join(format!("{label}-{stamp}-{seq:03}.json"));
        let written =
            std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, report.to_json()));
        match written {
            Ok(()) => {
                self.recorder.counter_add("flightrec.dumps.written", 1);
                self.rotate_dumps(dir);
                Some(path.to_string_lossy().into_owned())
            }
            Err(_) => {
                self.recorder.counter_add("flightrec.dumps.failed", 1);
                None
            }
        }
    }

    /// Keeps the dump directory bounded: retains the newest
    /// [`ServiceConfig::flightrec_keep`] `.json` dumps (by modification
    /// time, then name) and deletes the rest. Errors are counted, never
    /// fatal — rotation is best-effort housekeeping on the admin path.
    fn rotate_dumps(&self, dir: &str) {
        let keep = self.config.flightrec_keep;
        if keep == 0 {
            return;
        }
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut dumps: Vec<(std::time::SystemTime, std::path::PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                if path.extension().is_some_and(|ext| ext == "json") {
                    let modified = e
                        .metadata()
                        .and_then(|m| m.modified())
                        .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                    Some((modified, path))
                } else {
                    None
                }
            })
            .collect();
        if dumps.len() <= keep {
            return;
        }
        dumps.sort();
        let excess = dumps.len() - keep;
        for (_, path) in dumps.into_iter().take(excess) {
            match std::fs::remove_file(&path) {
                Ok(()) => self.recorder.counter_add("flightrec.dumps.rotated", 1),
                Err(_) => self.recorder.counter_add("flightrec.dumps.rotate_failed", 1),
            }
        }
    }

    /// Assesses the SLO window right now ([`Request::Health`]).
    fn health_response(&self) -> Response {
        Response::Health { report: self.health.assess(self.clock.now().value()) }
    }

    /// Snapshots the live call-path profile ([`Request::Profile`]): the
    /// per-path stats as a JSON object, or the folded-stack text ready to
    /// pipe into `flamegraph.pl`.
    fn profile_response(&self, format: ProfileFormat) -> Response {
        let body = match format {
            ProfileFormat::Json => ppuf_telemetry::profile_to_json(&self.profiler.snapshot()),
            ProfileFormat::Folded => self.profiler.fold(),
        };
        Response::Profile { format, body }
    }

    /// Snapshots the flight recorder on demand ([`Request::Dump`]).
    fn dump_response(&self) -> Response {
        let report = self.flight.dump("admin");
        let traces = report.traces.len() as u64;
        let events = report.events.len() as u64;
        let path = self.write_dump("admin", &report);
        Response::Dumped { path, traces, events }
    }

    /// Renders the recorder's live state — counters, span summaries,
    /// events, traces — as a [`Response::Stats`] body: the schema-v2 JSON
    /// report, or Prometheus text exposition with live
    /// `ppuf_pool_queue_depth` / `ppuf_pool_workers` /
    /// `ppuf_cache_entries` / `ppuf_slo_*` gauges.
    fn stats(&self, format: StatsFormat) -> Response {
        let report = self.recorder.snapshot("ppuf-server live stats");
        let body = match format {
            StatsFormat::Json => report.to_json(),
            StatsFormat::Prometheus => {
                let health = self.health.assess(self.clock.now().value());
                let mut gauges = vec![
                    ("ppuf_pool_queue_depth".to_string(), self.pool.queue_depth() as f64),
                    ("ppuf_pool_workers".to_string(), self.pool.workers() as f64),
                    ("ppuf_cache_entries".to_string(), self.cache.len() as f64),
                    ("ppuf_slo_health".to_string(), health.status.as_gauge()),
                    ("ppuf_slo_window_requests".to_string(), health.requests as f64),
                ];
                for verdict in &health.slos {
                    gauges.push((format!("ppuf_slo_{}", verdict.slo), verdict.value));
                }
                if let Some(transport) = self.transport.lock().expect("transport lock").as_ref() {
                    gauges.extend(transport.gauges());
                }
                prometheus::render(&report, &gauges)
            }
        };
        Response::Stats { format, body }
    }

    fn register(&self, device_id: String, model: PublicModel) -> Response {
        let space = match ChallengeSpace::new(model.nodes(), model.grid().grid()) {
            Ok(space) => space,
            Err(e) => {
                return Response::error(ErrorKind::Malformed, format!("unusable model: {e}"));
            }
        };
        let mut issuer = ChallengeIssuer::new(space, self.config.seed ^ device_seed(&device_id))
            .with_clock(Arc::clone(&self.clock))
            .with_ttl(self.config.session_ttl);
        if let Some(deadline) = self.config.deadline {
            issuer = issuer.with_deadline(deadline);
        }
        if self.config.challenge_pool > 0 {
            issuer = issuer.with_challenge_pool(self.config.challenge_pool);
        }
        let verifier = Verifier::new(model.clone())
            .with_threads(self.config.verify_threads)
            .with_tolerance(self.config.tolerance);
        // a re-registration may change the model: stale verdicts must go
        self.cache.invalidate_device(&device_id);
        self.registry.insert(DeviceEntry { device_id: device_id.clone(), model, verifier, issuer });
        self.recorder.counter_add("server.devices.registered", 1);
        Response::Registered { device_id }
    }

    fn revoke(&self, device_id: &str) -> Response {
        let existed = self.registry.remove(device_id);
        if existed {
            self.cache.invalidate_device(device_id);
            self.recorder.counter_add("server.devices.revoked", 1);
        }
        Response::Revoked { device_id: device_id.to_string(), existed }
    }

    fn get_challenge(&self, device_id: &str) -> Response {
        let Some(entry) = self.registry.get(device_id) else {
            return self.unknown_device(device_id);
        };
        let issued = entry.issuer.issue();
        self.recorder.counter_add("server.challenges.issued", 1);
        Response::Challenge {
            device_id: device_id.to_string(),
            nonce: issued.nonce,
            challenge: issued.challenge,
            deadline_s: issued.deadline.map(|d| d.value()),
        }
    }

    fn submit_answer(
        &self,
        device_id: &str,
        nonce: u64,
        answer: ppuf_core::protocol::auth::ProverAnswer,
        trace: Option<SpanContext>,
    ) -> Response {
        let Some(entry) = self.registry.get(device_id) else {
            return self.unknown_device(device_id);
        };
        let session = match entry.issuer.redeem(nonce) {
            Ok(session) => session,
            Err(e @ RedeemError::UnknownNonce { .. }) => {
                self.recorder.counter_add("server.replays.rejected", 1);
                return Response::error(ErrorKind::ReplayOrUnknownNonce, e.to_string());
            }
            Err(e @ RedeemError::Expired { .. }) => {
                self.recorder.counter_add("server.sessions.expired", 1);
                return Response::error(ErrorKind::SessionExpired, e.to_string());
            }
        };
        let (reply_tx, reply_rx) = bounded(1);
        // verify against the challenge bound to the nonce at issue time —
        // the client never gets to choose it
        let job = VerifyJob::new(Arc::clone(&entry), session.challenge, answer, reply_tx, trace);
        match self.pool.submit(job) {
            Ok(()) => {}
            Err(SubmitError::QueueFull) => {
                self.recorder.counter_add("server.pool.rejected", 1);
                return Response::Error {
                    kind: ErrorKind::Overloaded,
                    message: format!("verification queue full ({} jobs)", self.pool.capacity()),
                    retry_after_ms: Some(self.config.retry_after_ms),
                };
            }
            Err(SubmitError::Closed) => {
                return Response::error(ErrorKind::Internal, "verifier pool is shut down");
            }
        }
        let outcome = match reply_rx.recv() {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(message)) => return Response::error(ErrorKind::Internal, message),
            Err(_) => {
                return Response::error(ErrorKind::Internal, "verifier worker dropped the job");
            }
        };
        let within_deadline = match self.config.deadline {
            Some(deadline) => session.elapsed.value() <= deadline.value(),
            None => true,
        };
        let mut report = outcome.report;
        report.within_deadline = within_deadline;
        let accepted = report.accepted();
        self.recorder.counter_add(
            if accepted { "server.answers.accepted" } else { "server.answers.rejected" },
            1,
        );
        if !within_deadline {
            self.recorder.counter_add("server.answers.rejected_deadline", 1);
        }
        Response::Verdict {
            device_id: device_id.to_string(),
            nonce,
            accepted,
            report,
            cached: outcome.cached,
            elapsed_s: session.elapsed.value(),
        }
    }

    fn unknown_device(&self, device_id: &str) -> Response {
        self.recorder.counter_add("server.errors.unknown_device", 1);
        Response::error(ErrorKind::UnknownDevice, format!("device {device_id:?} is not registered"))
    }
}

/// 64-bit digest giving each device id a distinct issuer seed.
fn device_seed(text: &str) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    text.hash(&mut hasher);
    hasher.finish()
}

/// Wire-variant name for the root span's `kind` attribute.
fn request_kind(request: &Request) -> &'static str {
    match request {
        Request::Register { .. } => "Register",
        Request::Revoke { .. } => "Revoke",
        Request::GetChallenge { .. } => "GetChallenge",
        Request::SubmitAnswer { .. } => "SubmitAnswer",
        Request::Ping => "Ping",
        Request::Stats { .. } => "Stats",
        Request::Health => "Health",
        Request::Dump => "Dump",
        Request::Profile { .. } => "Profile",
    }
}

/// SLO classification of a finished request by its response shape.
fn classify(response: &Response) -> RequestOutcome {
    match response {
        Response::Verdict { accepted: true, .. } => RequestOutcome::Accepted,
        Response::Verdict { report, .. } if !report.within_deadline => {
            RequestOutcome::RejectedDeadline
        }
        Response::Verdict { .. } => RequestOutcome::RejectedFlow,
        Response::Error { kind: ErrorKind::Overloaded, .. } => RequestOutcome::Overloaded,
        Response::Error { kind: ErrorKind::Internal, .. } => RequestOutcome::InternalError,
        _ => RequestOutcome::Other,
    }
}

/// Flight-recorder trace label (becomes a `flightrec.trace.<label>`
/// counter per retained trace).
fn outcome_label(outcome: RequestOutcome) -> &'static str {
    match outcome {
        RequestOutcome::Accepted => "accepted",
        RequestOutcome::RejectedFlow => "rejected_flow",
        RequestOutcome::RejectedDeadline => "rejected_deadline",
        RequestOutcome::Overloaded => "overloaded",
        RequestOutcome::InternalError => "internal_error",
        RequestOutcome::Other => "other",
    }
}

/// Linear 1 µS element for the startup preflight divider; zero for
/// `dv ≤ 0` to satisfy the solver's incremental-passivity contract.
#[derive(Debug, Clone, Copy)]
struct PreflightResistor;

impl TwoTerminal for PreflightResistor {
    fn current(&self, dv: Volts, _temp: Celsius) -> Amps {
        Amps(dv.value().max(0.0) * 1e-6)
    }

    fn conductance(&self, dv: Volts, _temp: Celsius) -> f64 {
        if dv.value() <= 0.0 {
            0.0
        } else {
            1e-6
        }
    }
}

/// Exercises the DC engine once at service construction: three solves of
/// a trivial resistor divider against the service recorder, so the
/// `analog.dc.warm_start_hits` / `analog.dc.warm_start_misses` counters
/// (and one `analog.dc.residual_trace` convergence event) are live in
/// `Stats` output from the first scrape — the serving path itself only
/// runs residual-BFS flow checks, never the analog solver.
fn warm_start_preflight(recorder: &MemoryRecorder) {
    let mut circuit = Circuit::new(3);
    for (from, to) in [(0, 1), (1, 2)] {
        circuit.add_element(from, to, PreflightResistor).expect("preflight divider is well-formed");
    }
    let options = DcOptions { trace_residuals: true, ..DcOptions::default() };
    let mut engine = DcEngine::new(EngineOptions { threads: 1, ..EngineOptions::default() });
    for _ in 0..3 {
        engine
            .solve_traced(&circuit, 0, 2, Volts(1.0), &options, recorder)
            .expect("preflight divider solves");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppuf_analog::variation::Environment;
    use ppuf_core::device::{Ppuf, PpufConfig};
    use ppuf_core::protocol::auth::prove;
    use ppuf_core::protocol::clock::ManualClock;

    fn service_with_device(
        config: ServiceConfig,
        clock: Arc<ManualClock>,
    ) -> (VerificationService, Ppuf) {
        let service = VerificationService::with_clock(config, clock);
        let ppuf = Ppuf::generate(PpufConfig::paper(6, 2), 31).unwrap();
        let response = service.handle(Request::Register {
            device_id: "dev".into(),
            model: ppuf.public_model().unwrap(),
        });
        assert_eq!(response, Response::Registered { device_id: "dev".into() });
        (service, ppuf)
    }

    fn get_challenge(service: &VerificationService) -> (u64, ppuf_core::challenge::Challenge) {
        match service.handle(Request::GetChallenge { device_id: "dev".into() }) {
            Response::Challenge { nonce, challenge, .. } => (nonce, challenge),
            other => panic!("expected challenge, got {other:?}"),
        }
    }

    #[test]
    fn honest_round_trip_accepted() {
        let clock = Arc::new(ManualClock::new());
        let (service, ppuf) = service_with_device(ServiceConfig::default(), Arc::clone(&clock));
        let (nonce, challenge) = get_challenge(&service);
        let answer = prove(&ppuf.executor(Environment::NOMINAL), &challenge).unwrap();
        match service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer }) {
            Response::Verdict { accepted, cached, .. } => {
                assert!(accepted);
                assert!(!cached);
            }
            other => panic!("expected verdict, got {other:?}"),
        }
        assert_eq!(service.recorder().counter("server.answers.accepted"), 1);
    }

    #[test]
    fn server_layer_replay_rejected() {
        let clock = Arc::new(ManualClock::new());
        let (service, ppuf) = service_with_device(ServiceConfig::default(), Arc::clone(&clock));
        let (nonce, challenge) = get_challenge(&service);
        let answer = prove(&ppuf.executor(Environment::NOMINAL), &challenge).unwrap();
        let first = service.handle(Request::SubmitAnswer {
            device_id: "dev".into(),
            nonce,
            answer: answer.clone(),
        });
        assert!(matches!(first, Response::Verdict { accepted: true, .. }), "{first:?}");
        // identical bytes, same nonce: the replay must die at the issuer
        let second =
            service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer });
        match second {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ReplayOrUnknownNonce),
            other => panic!("expected replay rejection, got {other:?}"),
        }
        assert_eq!(service.recorder().counter("server.replays.rejected"), 1);
    }

    #[test]
    fn slow_answer_rejected_on_deadline_fast_one_accepted() {
        let clock = Arc::new(ManualClock::new());
        let config = ServiceConfig { deadline: Some(Seconds(0.5)), ..ServiceConfig::default() };
        let (service, ppuf) = service_with_device(config, Arc::clone(&clock));
        let executor = ppuf.executor(Environment::NOMINAL);

        let (nonce, challenge) = get_challenge(&service);
        clock.advance(0.1);
        let answer = prove(&executor, &challenge).unwrap();
        let fast = service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer });
        assert!(matches!(fast, Response::Verdict { accepted: true, .. }), "{fast:?}");

        // a simulating attacker: same correct answer, but past the deadline
        let (nonce, challenge) = get_challenge(&service);
        clock.advance(2.0);
        let answer = prove(&executor, &challenge).unwrap();
        match service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer }) {
            Response::Verdict { accepted, report, elapsed_s, .. } => {
                assert!(!accepted);
                assert!(!report.within_deadline);
                assert!((elapsed_s - 2.0).abs() < 1e-12);
            }
            other => panic!("expected verdict, got {other:?}"),
        }
        assert_eq!(service.recorder().counter("server.answers.rejected_deadline"), 1);
    }

    #[test]
    fn pooled_challenges_hit_the_cache_across_sessions() {
        let clock = Arc::new(ManualClock::new());
        let config = ServiceConfig { challenge_pool: 1, ..ServiceConfig::default() };
        let (service, ppuf) = service_with_device(config, Arc::clone(&clock));
        let executor = ppuf.executor(Environment::NOMINAL);
        for round in 0..3 {
            let (nonce, challenge) = get_challenge(&service);
            let answer = prove(&executor, &challenge).unwrap();
            match service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer }) {
                Response::Verdict { accepted, cached, .. } => {
                    assert!(accepted);
                    assert_eq!(cached, round > 0, "round {round}");
                }
                other => panic!("expected verdict, got {other:?}"),
            }
        }
        assert_eq!(service.recorder().counter("server.cache.hits"), 2);
        assert_eq!(service.recorder().counter("server.cache.misses"), 1);
    }

    #[test]
    fn unknown_device_and_revocation() {
        let clock = Arc::new(ManualClock::new());
        let (service, _ppuf) = service_with_device(ServiceConfig::default(), Arc::clone(&clock));
        match service.handle(Request::GetChallenge { device_id: "ghost".into() }) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownDevice),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(
            service.handle(Request::Revoke { device_id: "dev".into() }),
            Response::Revoked { device_id: "dev".into(), existed: true }
        );
        match service.handle(Request::GetChallenge { device_id: "dev".into() }) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownDevice),
            other => panic!("expected error after revocation, got {other:?}"),
        }
        assert_eq!(
            service.handle(Request::Revoke { device_id: "dev".into() }),
            Response::Revoked { device_id: "dev".into(), existed: false }
        );
    }

    #[test]
    fn traced_submit_builds_one_rooted_request_tree() {
        let clock = Arc::new(ManualClock::new());
        let (service, ppuf) = service_with_device(ServiceConfig::default(), Arc::clone(&clock));
        let (nonce, challenge) = get_challenge(&service);
        let answer = prove(&ppuf.executor(Environment::NOMINAL), &challenge).unwrap();
        let trace = ppuf_telemetry::next_trace_id();
        let response = service
            .handle_traced(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer }, trace);
        assert!(matches!(response, Response::Verdict { accepted: true, .. }), "{response:?}");
        let tree = service
            .recorder()
            .assemble_trace(trace)
            .expect("trace recorded")
            .expect("well-formed trace");
        assert_eq!(tree.span.name, "server.request");
        for name in ["server.queue_wait", "server.cache_probe", "server.verify"] {
            assert!(tree.contains(name), "missing {name} in request trace");
        }
        assert!(tree.durations_contained());
    }

    #[test]
    fn stats_prometheus_exposes_live_metrics() {
        let clock = Arc::new(ManualClock::new());
        let (service, _ppuf) = service_with_device(ServiceConfig::default(), Arc::clone(&clock));
        let body = match service.handle(Request::Stats { format: StatsFormat::Prometheus }) {
            Response::Stats { format: StatsFormat::Prometheus, body } => body,
            other => panic!("expected prometheus stats, got {other:?}"),
        };
        let samples = ppuf_telemetry::prometheus::validate(&body).expect("exposition is valid");
        for required in [
            "ppuf_requests_total",
            "ppuf_cache_hits_total",
            "ppuf_cache_misses_total",
            "ppuf_dc_warm_start_hits_total",
            "ppuf_pool_queue_depth",
            "ppuf_pool_workers",
            "ppuf_cache_entries",
            "ppuf_slo_health",
            "ppuf_slo_window_requests",
            "ppuf_slo_latency_p99_seconds",
            "ppuf_slo_overload_ratio",
            "ppuf_slo_reject_ratio",
        ] {
            assert!(samples.contains_key(required), "missing {required} in:\n{body}");
        }
        // the construction-time preflight already warmed the engine twice
        assert!(samples["ppuf_dc_warm_start_hits_total"] >= 2.0);
        assert_eq!(samples["ppuf_pool_workers"], 2.0);
    }

    #[test]
    fn stats_json_is_a_parseable_schema_v2_report() {
        let clock = Arc::new(ManualClock::new());
        let (service, _ppuf) = service_with_device(ServiceConfig::default(), Arc::clone(&clock));
        let body = match service.handle(Request::Stats { format: StatsFormat::Json }) {
            Response::Stats { format: StatsFormat::Json, body } => body,
            other => panic!("expected json stats, got {other:?}"),
        };
        let report = ppuf_telemetry::Report::from_json(&body).expect("stats body parses");
        assert_eq!(report.counters.get("analog.dc.warm_start_hits"), Some(&2));
        assert!(
            report.events.iter().any(|e| e.name == "analog.dc.residual_trace"),
            "preflight must leave a convergence trace in the report"
        );
    }

    fn temp_dump_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("ppuf-flightrec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn health_reports_ok_on_honest_traffic() {
        let clock = Arc::new(ManualClock::new());
        let config = ServiceConfig { challenge_pool: 1, ..ServiceConfig::default() };
        let min = config.slo.min_requests as usize;
        let (service, ppuf) = service_with_device(config, Arc::clone(&clock));
        let executor = ppuf.executor(Environment::NOMINAL);
        // each round is two observed requests (challenge + answer)
        for _ in 0..min.div_ceil(2) {
            let (nonce, challenge) = get_challenge(&service);
            let answer = prove(&executor, &challenge).unwrap();
            let response =
                service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer });
            assert!(matches!(response, Response::Verdict { accepted: true, .. }), "{response:?}");
        }
        match service.handle(Request::Health) {
            Response::Health { report } => {
                assert_eq!(report.status, crate::health::HealthStatus::Ok, "{report:?}");
                assert!(report.requests >= min as u64);
                assert_eq!(report.slos.len(), 3);
            }
            other => panic!("expected health report, got {other:?}"),
        }
    }

    #[test]
    fn health_surface_reflects_overload_in_the_window() {
        let clock = Arc::new(ManualClock::new());
        let (service, _ppuf) = service_with_device(ServiceConfig::default(), Arc::clone(&clock));
        let now = clock.now().value();
        // synthetic shed burst into the live tracker: deterministic, no
        // racing clients needed — the admin command must read it back
        for _ in 0..30 {
            service.health().record(now, 0.001, crate::health::RequestOutcome::Overloaded);
        }
        for _ in 0..10 {
            service.health().record(now, 0.001, crate::health::RequestOutcome::Accepted);
        }
        match service.handle(Request::Health) {
            Response::Health { report } => {
                assert_eq!(report.status, crate::health::HealthStatus::Unhealthy, "{report:?}");
                let slo = report.slo("overload_ratio").unwrap();
                assert!(slo.value > slo.unhealthy_at);
            }
            other => panic!("expected health report, got {other:?}"),
        }
        // the gauge tracks the same assessment
        let body = match service.handle(Request::Stats { format: StatsFormat::Prometheus }) {
            Response::Stats { body, .. } => body,
            other => panic!("expected stats, got {other:?}"),
        };
        let samples = ppuf_telemetry::prometheus::validate(&body).unwrap();
        assert_eq!(samples["ppuf_slo_health"], 2.0);
    }

    #[test]
    fn reject_burst_triggers_a_parseable_flight_dump() {
        let clock = Arc::new(ManualClock::new());
        let dir = temp_dump_dir("burst");
        let config = ServiceConfig {
            challenge_pool: 0,
            flightrec_dir: Some(dir.clone()),
            failure_burst_threshold: 4,
            ..ServiceConfig::default()
        };
        let (service, _ppuf) = service_with_device(config, Arc::clone(&clock));
        // an impostor device of the same shape: answers are well-formed
        // but its flows never match the registered model
        let impostor = Ppuf::generate(PpufConfig::paper(6, 2), 99).unwrap();
        let executor = impostor.executor(Environment::NOMINAL);
        for _ in 0..5 {
            let (nonce, challenge) = get_challenge(&service);
            let answer = prove(&executor, &challenge).unwrap();
            let response =
                service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer });
            assert!(matches!(response, Response::Verdict { accepted: false, .. }), "{response:?}");
        }
        assert_eq!(service.recorder().counter("flightrec.triggers.fired"), 1);
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .expect("dump directory exists")
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(dumps.len(), 1, "{dumps:?}");
        let name = dumps[0].file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("failure-burst-"), "{name}");
        let body = std::fs::read_to_string(&dumps[0]).unwrap();
        let report = ppuf_telemetry::Report::from_json(&body).expect("dump parses as a report");
        assert!(!report.traces.is_empty(), "dump must retain the rejected request traces");
        assert!(report.counters.get("flightrec.trace.rejected_flow").copied().unwrap_or(0) >= 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admin_dump_snapshots_the_flight_recorder() {
        let clock = Arc::new(ManualClock::new());
        let dir = temp_dump_dir("admin");
        let config = ServiceConfig {
            challenge_pool: 1,
            flightrec_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let (service, ppuf) = service_with_device(config, Arc::clone(&clock));
        let (nonce, challenge) = get_challenge(&service);
        let answer = prove(&ppuf.executor(Environment::NOMINAL), &challenge).unwrap();
        service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer });
        match service.handle(Request::Dump) {
            Response::Dumped { path, traces, .. } => {
                assert_eq!(traces, 1, "one submit round retained");
                let path = path.expect("dump directory is configured");
                let body = std::fs::read_to_string(&path).unwrap();
                let report = ppuf_telemetry::Report::from_json(&body).unwrap();
                assert_eq!(report.traces.len(), 1);
            }
            other => panic!("expected dump ack, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_flight_recorder_dump_is_empty_and_pathless() {
        let clock = Arc::new(ManualClock::new());
        let config = ServiceConfig { flightrec_traces: 0, ..ServiceConfig::default() };
        let (service, _ppuf) = service_with_device(config, Arc::clone(&clock));
        match service.handle(Request::Dump) {
            Response::Dumped { path, traces, events } => {
                assert_eq!(path, None);
                assert_eq!(traces, 0);
                assert_eq!(events, 0);
            }
            other => panic!("expected dump ack, got {other:?}"),
        }
    }

    #[test]
    fn profile_admin_command_serves_json_and_folded_renderings() {
        let clock = Arc::new(ManualClock::new());
        let (service, _ppuf) = service_with_device(ServiceConfig::default(), Arc::clone(&clock));
        // the construction-time preflight already profiled three DC solves
        let body = match service.handle(Request::Profile { format: ProfileFormat::Json }) {
            Response::Profile { format: ProfileFormat::Json, body } => body,
            other => panic!("expected json profile, got {other:?}"),
        };
        assert!(body.contains("\"analog.dc.solve\""), "preflight solves are profiled:\n{body}");
        assert!(body.contains("\"count\""), "{body}");

        let folded = match service.handle(Request::Profile { format: ProfileFormat::Folded }) {
            Response::Profile { format: ProfileFormat::Folded, body } => body,
            other => panic!("expected folded profile, got {other:?}"),
        };
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (path, micros) = line.rsplit_once(' ').expect("folded line is `path micros`");
            assert!(!path.is_empty());
            micros.parse::<u64>().unwrap_or_else(|_| panic!("bad self-micros in {line:?}"));
        }
        assert!(
            folded.lines().any(|l| l.starts_with("analog.dc.solve;stamp;device_eval ")),
            "device-eval leaf present:\n{folded}"
        );
        // the live stats report carries the same profile as a section
        let stats = match service.handle(Request::Stats { format: StatsFormat::Json }) {
            Response::Stats { body, .. } => body,
            other => panic!("expected stats, got {other:?}"),
        };
        let report = ppuf_telemetry::Report::from_json(&stats).unwrap();
        assert!(!report.profile.is_empty(), "stats report carries the profile section");
        assert!(report.profile.contains_key("analog.dc.solve"));
    }

    #[test]
    fn dump_rotation_keeps_only_the_newest_files() {
        let clock = Arc::new(ManualClock::new());
        let dir = temp_dump_dir("rotate");
        let config = ServiceConfig {
            challenge_pool: 1,
            flightrec_dir: Some(dir.clone()),
            flightrec_keep: 2,
            ..ServiceConfig::default()
        };
        let (service, ppuf) = service_with_device(config, Arc::clone(&clock));
        let (nonce, challenge) = get_challenge(&service);
        let answer = prove(&ppuf.executor(Environment::NOMINAL), &challenge).unwrap();
        service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer });
        let mut last_path = None;
        for _ in 0..5 {
            match service.handle(Request::Dump) {
                Response::Dumped { path, .. } => last_path = path,
                other => panic!("expected dump ack, got {other:?}"),
            }
        }
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .expect("dump directory exists")
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        assert_eq!(files.len(), 2, "rotation keeps flightrec_keep files: {files:?}");
        let newest = std::path::PathBuf::from(last_path.expect("dump path returned"));
        assert!(files.contains(&newest), "the newest dump survives rotation: {files:?}");
        assert_eq!(service.recorder().counter("flightrec.dumps.rotated"), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_session_rejected() {
        let clock = Arc::new(ManualClock::new());
        let config = ServiceConfig { session_ttl: Seconds(1.0), ..ServiceConfig::default() };
        let (service, ppuf) = service_with_device(config, Arc::clone(&clock));
        let (nonce, challenge) = get_challenge(&service);
        clock.advance(5.0);
        let answer = prove(&ppuf.executor(Environment::NOMINAL), &challenge).unwrap();
        match service.handle(Request::SubmitAnswer { device_id: "dev".into(), nonce, answer }) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::SessionExpired),
            other => panic!("expected expiry, got {other:?}"),
        }
    }
}
