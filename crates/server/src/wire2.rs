//! Wire 2.0: compact binary framing with request correlation.
//!
//! Every frame is a fixed 16-byte little-endian header followed by the
//! payload:
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0xB5 0x50
//! 2       1     version (2)
//! 3       1     opcode
//! 4       8     correlation id (echoed verbatim on the response)
//! 12      4     payload length
//! 16      len   payload
//! ```
//!
//! The hot protocol messages — [`Request::GetChallenge`] /
//! [`Request::SubmitAnswer`] and their [`Response::Challenge`] /
//! [`Response::Verdict`] / [`Response::Error`] answers, plus `Ping` /
//! `Pong` — have fixed little-endian encodings, so a verification round
//! never touches a JSON parser. Cold admin messages (`Register`,
//! `Revoke`, `Stats`, `Health`, `Dump`, `Profile`) ride as JSON inside a
//! [`opcode::JSON_REQUEST`] / [`opcode::JSON_RESPONSE`] frame — full
//! coverage without a binary schema for every message.
//!
//! **Negotiation.** A JSON (wire 1.x) frame starts with a 4-byte
//! big-endian length capped at [`MAX_FRAME_LEN`] = 16 MiB, so its first
//! byte is always `0x00` or `0x01`. The first byte of a wire-2.0 frame is
//! the magic `0xB5`. A server sniffs the first byte of a connection and
//! locks the whole connection to that mode; anything that is neither is
//! garbage and the connection is closed. Correlation ids exist only on
//! the binary wire — JSON connections keep their 1.x contract of
//! in-order responses, byte-identical to previous releases.

use std::io::{self, Read, Write};

use ppuf_core::challenge::Challenge;
use ppuf_core::protocol::auth::{NetworkVerdict, ProverAnswer, VerificationReport};
use ppuf_maxflow::{Flow, NodeId};

use crate::wire::{ErrorKind, Request, Response, MAX_FRAME_LEN};

/// First magic byte — deliberately outside the `{0x00, 0x01}` range a
/// capped JSON length prefix can start with.
pub const MAGIC: [u8; 2] = [0xB5, 0x50];

/// Wire 2.0 header version byte.
pub const WIRE2_VERSION: u8 = 2;

/// Fixed header length.
pub const HEADER_LEN: usize = 16;

/// Frame opcodes. Request opcodes have the high bit clear, response
/// opcodes have it set.
pub mod opcode {
    /// `Request::GetChallenge` (fixed binary payload).
    pub const GET_CHALLENGE: u8 = 0x01;
    /// `Request::SubmitAnswer` (fixed binary payload).
    pub const SUBMIT_ANSWER: u8 = 0x02;
    /// `Request::Ping` (empty payload).
    pub const PING: u8 = 0x03;
    /// Any other `Request`, JSON-encoded in the payload.
    pub const JSON_REQUEST: u8 = 0x0F;
    /// `Response::Challenge` (fixed binary payload).
    pub const CHALLENGE: u8 = 0x81;
    /// `Response::Verdict` (fixed binary payload).
    pub const VERDICT: u8 = 0x82;
    /// `Response::Pong` (empty payload).
    pub const PONG: u8 = 0x83;
    /// `Response::Error` (fixed binary payload).
    pub const ERROR: u8 = 0x84;
    /// Any other `Response`, JSON-encoded in the payload.
    pub const JSON_RESPONSE: u8 = 0x8F;
}

/// One parsed wire-2.0 frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame2 {
    /// The frame opcode (see [`opcode`]).
    pub opcode: u8,
    /// Client-chosen correlation id, echoed verbatim on responses.
    pub corr: u64,
    /// The opcode-specific payload.
    pub payload: Vec<u8>,
}

/// Why a byte stream cannot be (or stopped being) wire 2.0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame2Error {
    /// The first bytes are not the wire-2.0 magic.
    BadMagic([u8; 2]),
    /// The header names a version this build does not speak.
    BadVersion(u8),
    /// The header names a payload longer than [`MAX_FRAME_LEN`].
    Oversized(usize),
}

impl std::fmt::Display for Frame2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Frame2Error::BadMagic(bytes) => {
                write!(f, "bad wire-2.0 magic {bytes:02x?}")
            }
            Frame2Error::BadVersion(v) => {
                write!(f, "unsupported wire-2.0 version {v} (this build speaks {WIRE2_VERSION})")
            }
            Frame2Error::Oversized(len) => {
                write!(f, "wire-2.0 payload of {len} bytes exceeds cap {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for Frame2Error {}

impl From<Frame2Error> for io::Error {
    fn from(e: Frame2Error) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Serializes one frame (header + payload) into a fresh buffer.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — encoders in this
/// module never produce one (the request/response types they accept are
/// themselves size-bounded upstream of any encode).
pub fn encode_frame(opcode: u8, corr: u64, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN, "oversized wire-2.0 payload");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(WIRE2_VERSION);
    frame.push(opcode);
    frame.extend_from_slice(&corr.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Tries to parse one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a frame prefix (read more
/// bytes and retry) and `Ok(Some((frame, consumed)))` when a full frame
/// was parsed — the caller drops `consumed` bytes off the front.
///
/// # Errors
///
/// [`Frame2Error`] when the bytes can never become a valid frame; the
/// stream is poisoned and the connection should close.
pub fn parse_frame(buf: &[u8]) -> Result<Option<(Frame2, usize)>, Frame2Error> {
    if buf.is_empty() {
        return Ok(None);
    }
    // fail fast on garbage: every byte of the magic is checked as soon as
    // it is available, so a torn first write still rejects immediately
    let check = buf.len().min(MAGIC.len());
    if buf[..check] != MAGIC[..check] {
        let mut seen = [0u8; 2];
        seen[..check].copy_from_slice(&buf[..check]);
        return Err(Frame2Error::BadMagic(seen));
    }
    if buf.len() > 2 && buf[2] != WIRE2_VERSION {
        return Err(Frame2Error::BadVersion(buf[2]));
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let opcode = buf[3];
    let corr = u64::from_le_bytes(buf[4..12].try_into().expect("8 header bytes"));
    let len = u32::from_le_bytes(buf[12..16].try_into().expect("4 header bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Frame2Error::Oversized(len));
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let payload = buf[HEADER_LEN..HEADER_LEN + len].to_vec();
    Ok(Some((Frame2 { opcode, corr, payload }, HEADER_LEN + len)))
}

/// Blocking write of one wire-2.0 frame (client/test helper).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame2<W: Write>(
    writer: &mut W,
    opcode: u8,
    corr: u64,
    payload: &[u8],
) -> io::Result<()> {
    writer.write_all(&encode_frame(opcode, corr, payload))?;
    writer.flush()
}

/// Blocking read of one wire-2.0 frame; `Ok(None)` on clean EOF before
/// the first byte (client/test helper).
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` for a malformed header or a
/// stream truncated mid-frame.
pub fn read_frame2<R: Read>(reader: &mut R) -> io::Result<Option<Frame2>> {
    let mut buf = Vec::with_capacity(HEADER_LEN);
    let mut chunk = [0u8; 4096];
    loop {
        match parse_frame(&buf)? {
            Some((frame, consumed)) => {
                debug_assert_eq!(consumed, buf.len(), "blocking reader reads frame-at-a-time");
                return Ok(Some(frame));
            }
            None => {
                // read only up to the next known boundary so no bytes of a
                // following frame are consumed and lost
                let want = if buf.len() < HEADER_LEN {
                    HEADER_LEN - buf.len()
                } else {
                    let len = u32::from_le_bytes(buf[12..16].try_into().expect("header")) as usize;
                    HEADER_LEN + len - buf.len()
                };
                let cap = want.min(chunk.len());
                let n = match reader.read(&mut chunk[..cap]) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if (e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut)
                            && !buf.is_empty() =>
                    {
                        continue; // mid-frame poll tick: keep the stream aligned
                    }
                    Err(e) => return Err(e),
                };
                if n == 0 {
                    if buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "stream truncated inside wire-2.0 frame",
                    ));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// payload codecs
// ---------------------------------------------------------------------

/// Little-endian payload writer.
#[derive(Debug, Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Fails (instead of panicking) when `s` exceeds the u16 length
    /// prefix — the encoders fall back to JSON framing, so a hostile
    /// 64 KiB+ device id echoed into a response can never kill the
    /// reactor thread.
    fn string(&mut self, s: &str) -> io::Result<()> {
        let len = u16::try_from(s.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("string of {} bytes exceeds the wire-2.0 64 KiB string cap", s.len()),
            )
        })?;
        self.u16(len);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    /// Bit-packed bools, 8 per byte, LSB first.
    fn bits(&mut self, bits: &[bool]) {
        self.u32(bits.len() as u32);
        let mut byte = 0u8;
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.u8(byte);
                byte = 0;
            }
        }
        if !bits.len().is_multiple_of(8) {
            self.u8(byte);
        }
    }

    fn flow(&mut self, flow: &Flow) {
        self.u32(flow.source().index() as u32);
        self.u32(flow.sink().index() as u32);
        self.f64(flow.value());
        let edges = flow.edge_flows();
        self.u32(edges.len() as u32);
        for &f in edges {
            self.f64(f);
        }
    }

    fn challenge(&mut self, challenge: &Challenge) {
        self.u32(challenge.source.index() as u32);
        self.u32(challenge.sink.index() as u32);
        self.bits(&challenge.control_bits);
    }
}

/// Little-endian payload reader; every under-run is `InvalidData`.
struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire-2.0 payload truncated: wanted {n} bytes, had {}", self.buf.len()),
            ));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire-2.0 bool byte {other:#04x}"),
            )),
        }
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Guards a count field against forcing a giant allocation: the
    /// elements must actually fit in the remaining payload.
    fn counted(&mut self, per_element: usize) -> io::Result<usize> {
        let count = self.u32()? as usize;
        if count.saturating_mul(per_element) > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire-2.0 count {count} larger than remaining payload"),
            ));
        }
        Ok(count)
    }

    fn bits(&mut self) -> io::Result<Vec<bool>> {
        let count = self.u32()? as usize;
        // packed-size guard before the Vec<bool> allocation: a hostile
        // count cannot force an allocation ~8x larger than the bytes the
        // client actually sent
        if count.div_ceil(8) > self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire-2.0 bit count {count} larger than remaining payload"),
            ));
        }
        let bytes = self.take(count.div_ceil(8))?;
        Ok((0..count).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
    }

    fn flow(&mut self) -> io::Result<Flow> {
        let source = NodeId::new(self.u32()?);
        let sink = NodeId::new(self.u32()?);
        let value = self.f64()?;
        let count = self.counted(8)?;
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            edges.push(self.f64()?);
        }
        Ok(Flow::from_edge_flows(source, sink, value, edges))
    }

    fn challenge(&mut self) -> io::Result<Challenge> {
        let source = NodeId::new(self.u32()?);
        let sink = NodeId::new(self.u32()?);
        let control_bits = self.bits()?;
        Ok(Challenge { source, sink, control_bits })
    }

    fn finish(self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} trailing bytes after wire-2.0 payload", self.buf.len()),
            ))
        }
    }
}

/// Longest device id a wire-2.0 request may carry, enforced at decode
/// (both the fixed binary encodings and `JSON_REQUEST` frames). The
/// service quotes device ids into error and echo responses, so capping
/// them at ingress bounds every response string far below the binary
/// wire's 64 KiB string limit.
pub const MAX_DEVICE_ID_LEN: usize = 256;

/// Rejects requests whose device id exceeds [`MAX_DEVICE_ID_LEN`].
fn check_device_id(request: &Request) -> io::Result<()> {
    let device_id = match request {
        Request::Register { device_id, .. }
        | Request::Revoke { device_id }
        | Request::GetChallenge { device_id }
        | Request::SubmitAnswer { device_id, .. } => device_id,
        _ => return Ok(()),
    };
    if device_id.len() > MAX_DEVICE_ID_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "device id of {} bytes exceeds the wire-2.0 cap of {MAX_DEVICE_ID_LEN}",
                device_id.len()
            ),
        ));
    }
    Ok(())
}

const ERROR_KINDS: [ErrorKind; 6] = [
    ErrorKind::UnknownDevice,
    ErrorKind::ReplayOrUnknownNonce,
    ErrorKind::SessionExpired,
    ErrorKind::Overloaded,
    ErrorKind::Malformed,
    ErrorKind::Internal,
];

fn error_kind_byte(kind: ErrorKind) -> u8 {
    ERROR_KINDS.iter().position(|&k| k == kind).expect("every kind is in the table") as u8
}

/// Fixed binary encoding of a hot-path request; `None` when the request
/// has no binary form or a field exceeds a binary-wire bound — the
/// caller falls back to JSON framing, which is lossless.
fn try_encode_request(request: &Request) -> Option<(u8, Vec<u8>)> {
    let mut enc = Enc::default();
    let opcode = match request {
        Request::GetChallenge { device_id } => {
            enc.string(device_id).ok()?;
            opcode::GET_CHALLENGE
        }
        Request::SubmitAnswer { device_id, nonce, answer } => {
            enc.string(device_id).ok()?;
            enc.u64(*nonce);
            enc.u8(u8::from(answer.response));
            enc.flow(&answer.flow_a);
            enc.flow(&answer.flow_b);
            opcode::SUBMIT_ANSWER
        }
        Request::Ping => opcode::PING,
        _ => return None,
    };
    Some((opcode, enc.buf))
}

/// Encodes a request as one wire-2.0 frame under `corr`. Requests whose
/// fields do not fit the fixed binary encodings ride a
/// [`opcode::JSON_REQUEST`] frame instead.
pub fn encode_request(corr: u64, request: &Request) -> Vec<u8> {
    let (opcode, payload) = try_encode_request(request).unwrap_or_else(|| {
        let json = serde_json::to_string(request).expect("requests serialize").into_bytes();
        (opcode::JSON_REQUEST, json)
    });
    encode_frame(opcode, corr, &payload)
}

/// Fixed binary encoding of a hot-path response; `None` when the
/// response has no binary form or a field exceeds a binary-wire bound
/// (see [`try_encode_request`]).
fn try_encode_response(response: &Response) -> Option<(u8, Vec<u8>)> {
    let mut enc = Enc::default();
    let opcode = match response {
        Response::Challenge { device_id, nonce, challenge, deadline_s } => {
            enc.string(device_id).ok()?;
            enc.u64(*nonce);
            match deadline_s {
                Some(deadline) => {
                    enc.u8(1);
                    enc.f64(*deadline);
                }
                None => enc.u8(0),
            }
            enc.challenge(challenge);
            opcode::CHALLENGE
        }
        Response::Verdict { device_id, nonce, accepted, report, cached, elapsed_s } => {
            enc.string(device_id).ok()?;
            enc.u64(*nonce);
            let mut flags = 0u8;
            for (bit, set) in [
                *accepted,
                report.network_a.feasible,
                report.network_a.maximal,
                report.network_b.feasible,
                report.network_b.maximal,
                report.response_consistent,
                report.within_deadline,
                *cached,
            ]
            .into_iter()
            .enumerate()
            {
                flags |= u8::from(set) << bit;
            }
            enc.u8(flags);
            enc.f64(*elapsed_s);
            opcode::VERDICT
        }
        Response::Error { kind, message, retry_after_ms } => {
            enc.u8(error_kind_byte(*kind));
            match retry_after_ms {
                Some(ms) => {
                    enc.u8(1);
                    enc.u64(*ms);
                }
                None => enc.u8(0),
            }
            enc.string(message).ok()?;
            opcode::ERROR
        }
        Response::Pong => opcode::PONG,
        _ => return None,
    };
    Some((opcode, enc.buf))
}

/// Encodes a response as one wire-2.0 frame echoing `corr`. This never
/// panics on any `Response` the service can build: oversized strings
/// fall back to JSON framing, and a response no frame can carry (past
/// [`MAX_FRAME_LEN`] even as JSON) is replaced by a compact `Internal`
/// error so the connection — and the reactor thread encoding on it —
/// stays alive.
pub fn encode_response(corr: u64, response: &Response) -> Vec<u8> {
    let (opcode, payload) = try_encode_response(response).unwrap_or_else(|| {
        let json = serde_json::to_string(response).expect("responses serialize").into_bytes();
        (opcode::JSON_RESPONSE, json)
    });
    if payload.len() > MAX_FRAME_LEN {
        let fallback = Response::Error {
            kind: ErrorKind::Internal,
            message: format!("response of {} bytes exceeds the frame cap", payload.len()),
            retry_after_ms: None,
        };
        return encode_response(corr, &fallback);
    }
    encode_frame(opcode, corr, &payload)
}

/// Decodes a request frame's payload.
///
/// # Errors
///
/// `InvalidData` for an unknown opcode, a truncated or trailing-bytes
/// payload, an unparseable JSON payload, or a device id past
/// [`MAX_DEVICE_ID_LEN`] — the caller answers with a structured
/// `Malformed` error, keeping the connection alive (matching the JSON
/// wire's contract).
pub fn decode_request(frame: &Frame2) -> io::Result<Request> {
    let mut dec = Dec::new(&frame.payload);
    let request = match frame.opcode {
        opcode::GET_CHALLENGE => Request::GetChallenge { device_id: dec.string()? },
        opcode::SUBMIT_ANSWER => {
            let device_id = dec.string()?;
            let nonce = dec.u64()?;
            let response = dec.bool()?;
            let flow_a = dec.flow()?;
            let flow_b = dec.flow()?;
            Request::SubmitAnswer {
                device_id,
                nonce,
                answer: ProverAnswer { response, flow_a, flow_b },
            }
        }
        opcode::PING => Request::Ping,
        opcode::JSON_REQUEST => {
            let text = std::str::from_utf8(&frame.payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let request: Request = serde_json::from_str(text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            check_device_id(&request)?;
            return Ok(request);
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown wire-2.0 request opcode {other:#04x}"),
            ));
        }
    };
    dec.finish()?;
    check_device_id(&request)?;
    Ok(request)
}

/// Decodes a response frame's payload.
///
/// # Errors
///
/// `InvalidData` on any malformed payload (see [`decode_request`]).
pub fn decode_response(frame: &Frame2) -> io::Result<Response> {
    let mut dec = Dec::new(&frame.payload);
    let response = match frame.opcode {
        opcode::CHALLENGE => {
            let device_id = dec.string()?;
            let nonce = dec.u64()?;
            let deadline_s = if dec.bool()? { Some(dec.f64()?) } else { None };
            let challenge = dec.challenge()?;
            Response::Challenge { device_id, nonce, challenge, deadline_s }
        }
        opcode::VERDICT => {
            let device_id = dec.string()?;
            let nonce = dec.u64()?;
            let flags = dec.u8()?;
            let bit = |i: u8| flags & (1 << i) != 0;
            let elapsed_s = dec.f64()?;
            Response::Verdict {
                device_id,
                nonce,
                accepted: bit(0),
                report: VerificationReport {
                    network_a: NetworkVerdict { feasible: bit(1), maximal: bit(2) },
                    network_b: NetworkVerdict { feasible: bit(3), maximal: bit(4) },
                    response_consistent: bit(5),
                    within_deadline: bit(6),
                },
                cached: bit(7),
                elapsed_s,
            }
        }
        opcode::ERROR => {
            let kind_byte = dec.u8()? as usize;
            let kind = *ERROR_KINDS.get(kind_byte).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown wire-2.0 error kind {kind_byte}"),
                )
            })?;
            let retry_after_ms = if dec.bool()? { Some(dec.u64()?) } else { None };
            let message = dec.string()?;
            Response::Error { kind, message, retry_after_ms }
        }
        opcode::PONG => Response::Pong,
        opcode::JSON_RESPONSE => {
            let text = std::str::from_utf8(&frame.payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            return serde_json::from_str(text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown wire-2.0 response opcode {other:#04x}"),
            ));
        }
    };
    dec.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_is_disjoint_from_json_length_prefixes() {
        // a JSON frame's first byte is the high byte of a u32 BE length
        // capped at MAX_FRAME_LEN
        let max_first_byte = (MAX_FRAME_LEN as u32).to_be_bytes()[0];
        assert!(MAGIC[0] > max_first_byte, "negotiation must be unambiguous on the first byte");
    }

    #[test]
    fn frame_roundtrips_through_incremental_parse() {
        let frame = encode_frame(opcode::PING, 0xDEAD_BEEF_CAFE_F00D, b"xyz");
        // any split point short of the whole frame wants more bytes
        for cut in 0..frame.len() {
            match parse_frame(&frame[..cut]) {
                Ok(None) => {}
                other => panic!("prefix of {cut} bytes parsed as {other:?}"),
            }
        }
        let (parsed, consumed) = parse_frame(&frame).unwrap().expect("full frame parses");
        assert_eq!(consumed, frame.len());
        assert_eq!(parsed.opcode, opcode::PING);
        assert_eq!(parsed.corr, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(parsed.payload, b"xyz");
    }

    #[test]
    fn garbage_and_bad_version_rejected_immediately() {
        assert_eq!(parse_frame(b"GET / HTTP/1.1"), Err(Frame2Error::BadMagic([b'G', b'E'])));
        assert_eq!(parse_frame(&[0xB5, 0x51]), Err(Frame2Error::BadMagic([0xB5, 0x51])));
        // even a single wrong first byte is enough
        assert_eq!(parse_frame(&[0x42]), Err(Frame2Error::BadMagic([0x42, 0x00])));
        assert_eq!(parse_frame(&[0xB5, 0x50, 9]), Err(Frame2Error::BadVersion(9)));
        let mut oversized = encode_frame(opcode::PING, 1, b"");
        oversized[12..16].copy_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
        assert_eq!(parse_frame(&oversized), Err(Frame2Error::Oversized(MAX_FRAME_LEN + 1)));
    }

    #[test]
    fn blocking_helpers_roundtrip_two_frames() {
        let mut buf = Vec::new();
        write_frame2(&mut buf, opcode::PING, 7, b"").unwrap();
        write_frame2(&mut buf, opcode::PONG, 8, b"tail").unwrap();
        let mut cursor = io::Cursor::new(buf);
        let first = read_frame2(&mut cursor).unwrap().unwrap();
        assert_eq!((first.opcode, first.corr), (opcode::PING, 7));
        let second = read_frame2(&mut cursor).unwrap().unwrap();
        assert_eq!(
            (second.opcode, second.corr, second.payload),
            (opcode::PONG, 8, b"tail".to_vec())
        );
        assert_eq!(read_frame2(&mut cursor).unwrap(), None);
    }

    #[test]
    fn bit_packing_roundtrips_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let mut enc = Enc::default();
            enc.bits(&bits);
            let mut dec = Dec::new(&enc.buf);
            assert_eq!(dec.bits().unwrap(), bits, "len {len}");
            dec.finish().unwrap();
        }
    }

    #[test]
    fn hostile_counts_cannot_force_giant_allocations() {
        // a flow header claiming u32::MAX edges with no bytes behind it
        let mut enc = Enc::default();
        enc.string("d").unwrap();
        enc.u64(1);
        enc.u8(1);
        enc.u32(0); // flow_a.source
        enc.u32(1); // flow_a.sink
        enc.f64(0.0); // flow_a.value
        enc.u32(u32::MAX); // flow_a edge count: lies
        let frame = Frame2 { opcode: opcode::SUBMIT_ANSWER, corr: 1, payload: enc.buf };
        let err = decode_request(&frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn hostile_bit_counts_cannot_force_giant_allocations() {
        // a bit count claiming u32::MAX bits with no packed bytes behind
        // it must fail the packed-size guard, not allocate ~512 MiB
        let payload = u32::MAX.to_le_bytes();
        let mut dec = Dec::new(&payload);
        let err = dec.bits().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bit count"), "{err}");
    }

    #[test]
    fn oversized_strings_never_panic_the_response_encoder() {
        // a response quoting a near-64-KiB string cannot use the binary
        // string encoding; it must fall back to JSON framing losslessly
        let big = "x".repeat(70_000);
        let response =
            Response::error(ErrorKind::UnknownDevice, format!("device {big:?} is not registered"));
        let bytes = encode_response(9, &response);
        let (frame, _) = parse_frame(&bytes).unwrap().expect("complete frame");
        assert_eq!(frame.opcode, opcode::JSON_RESPONSE);
        assert_eq!(decode_response(&frame).unwrap(), response);

        // same on the request side (client-side encoder)
        let request = Request::GetChallenge { device_id: big };
        let bytes = encode_request(3, &request);
        let (frame, _) = parse_frame(&bytes).unwrap().expect("complete frame");
        assert_eq!(frame.opcode, opcode::JSON_REQUEST);
    }

    #[test]
    fn profile_admin_command_rides_the_json_opcode() {
        use crate::wire::ProfileFormat;
        // wire-1.3 additions need no new opcodes: they fall back to the
        // JSON framing like every other cold admin message
        for format in [ProfileFormat::Json, ProfileFormat::Folded] {
            let request = Request::Profile { format };
            let bytes = encode_request(11, &request);
            let (frame, _) = parse_frame(&bytes).unwrap().expect("complete frame");
            assert_eq!(frame.opcode, opcode::JSON_REQUEST);
            assert_eq!(frame.corr, 11);
            assert_eq!(decode_request(&frame).unwrap(), request);

            let response =
                Response::Profile { format, body: "analog.dc.solve;stamp 12\n".to_string() };
            let bytes = encode_response(11, &response);
            let (frame, _) = parse_frame(&bytes).unwrap().expect("complete frame");
            assert_eq!(frame.opcode, opcode::JSON_RESPONSE);
            assert_eq!(decode_response(&frame).unwrap(), response);
        }
    }

    #[test]
    fn device_ids_past_the_cap_are_rejected_at_decode() {
        let long_id = "d".repeat(MAX_DEVICE_ID_LEN + 1);
        // fixed binary encoding
        let mut enc = Enc::default();
        enc.string(&long_id).unwrap();
        let frame = Frame2 { opcode: opcode::GET_CHALLENGE, corr: 1, payload: enc.buf };
        let err = decode_request(&frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("device id"), "{err}");
        // JSON_REQUEST frames obey the same cap
        let request = Request::Revoke { device_id: long_id };
        let payload = serde_json::to_string(&request).unwrap().into_bytes();
        let frame = Frame2 { opcode: opcode::JSON_REQUEST, corr: 1, payload };
        let err = decode_request(&frame).unwrap_err();
        assert!(err.to_string().contains("device id"), "{err}");
        // ids at the cap still pass
        let ok = Request::GetChallenge { device_id: "d".repeat(MAX_DEVICE_ID_LEN) };
        let bytes = encode_request(2, &ok);
        let (frame, _) = parse_frame(&bytes).unwrap().expect("complete frame");
        assert_eq!(decode_request(&frame).unwrap(), ok);
    }
}
