//! Verifier worker pool: bounded queue, explicit backpressure.
//!
//! Connection threads do no verification themselves — they enqueue a
//! [`VerifyJob`] and block on its private reply channel. The queue is a
//! bounded crossbeam channel: when it is full, [`WorkerPool::submit`]
//! fails *immediately* with [`SubmitError::QueueFull`] instead of
//! blocking, and the service turns that into an `Overloaded` response
//! with a retry hint. Load is shed at the front door, visible to
//! clients, rather than silently stacking latency.
//!
//! Workers serve the flow checks from the [`VerificationCache`] when the
//! same (device, challenge, answer) triple was verified before; cache
//! hits skip both residual-BFS passes entirely. Every job is counted and
//! timed through `ppuf-telemetry`.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

use ppuf_core::challenge::Challenge;
use ppuf_core::protocol::auth::{ProverAnswer, VerificationReport};
use ppuf_telemetry::{record_interval, MemoryRecorder, Recorder, SpanContext, TracedSpan};

use crate::cache::{answer_fingerprint, challenge_fingerprint, VerificationCache};
use crate::registry::DeviceEntry;

/// One verification request handed to the pool.
#[derive(Debug)]
pub struct VerifyJob {
    /// The device whose verifier to run.
    pub entry: Arc<DeviceEntry>,
    /// The challenge the answer claims to solve.
    pub challenge: Challenge,
    /// The prover's answer.
    pub answer: ProverAnswer,
    /// Where the worker sends the outcome (capacity-1 channel; the
    /// submitting thread blocks on it).
    pub reply: Sender<Result<VerifyOutcome, String>>,
    /// When the job entered the queue — the worker turns the gap to
    /// dequeue time into a first-class `server.queue_wait` span.
    pub enqueued_at: Instant,
    /// The request's root span, so worker-side spans land in the same
    /// trace as the connection thread's.
    pub trace: Option<SpanContext>,
}

impl VerifyJob {
    /// Builds a job stamped with the current time, parented under
    /// `trace` (pass `None` to record flat aggregates only).
    pub fn new(
        entry: Arc<DeviceEntry>,
        challenge: Challenge,
        answer: ProverAnswer,
        reply: Sender<Result<VerifyOutcome, String>>,
        trace: Option<SpanContext>,
    ) -> Self {
        VerifyJob { entry, challenge, answer, reply, enqueued_at: Instant::now(), trace }
    }
}

/// What the worker produced: a timeless report (its `within_deadline` is
/// always `true`; the service applies the real deadline) plus cache
/// provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Feasibility/maximality/consistency findings.
    pub report: VerificationReport,
    /// Whether the report came from the cache (skipping residual BFS).
    pub cached: bool,
}

/// Why a job was not enqueued.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — shed load, retry later.
    QueueFull,
    /// The pool has shut down.
    Closed,
}

/// Fixed-size verifier thread pool over one bounded queue.
#[derive(Debug)]
pub struct WorkerPool {
    queue: Option<Sender<VerifyJob>>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
}

impl WorkerPool {
    /// Spawns `workers` verifier threads (clamped to at least 1) behind a
    /// queue of `queue_capacity` jobs.
    pub fn new(
        workers: usize,
        queue_capacity: usize,
        cache: Arc<VerificationCache>,
        recorder: Arc<MemoryRecorder>,
    ) -> Self {
        let capacity = queue_capacity.max(1);
        let (tx, rx) = bounded::<VerifyJob>(capacity);
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let cache = Arc::clone(&cache);
                let recorder = Arc::clone(&recorder);
                std::thread::Builder::new()
                    .name(format!("ppuf-verify-{i}"))
                    .spawn(move || worker_loop(&rx, &cache, &recorder))
                    .expect("spawn verifier worker")
            })
            .collect();
        WorkerPool { queue: Some(tx), workers, capacity }
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the queue is at capacity (the job
    /// is handed back inside neither variant — the caller still holds its
    /// reply receiver and simply reports overload), [`SubmitError::Closed`]
    /// after shutdown.
    pub fn submit(&self, job: VerifyJob) -> Result<(), SubmitError> {
        let queue = self.queue.as_ref().ok_or(SubmitError::Closed)?;
        match queue.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Closed),
        }
    }

    /// Queue capacity (jobs, not workers).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting in the queue (0 after shutdown) — the live
    /// `ppuf_pool_queue_depth` gauge.
    pub fn queue_depth(&self) -> usize {
        self.queue.as_ref().map_or(0, Sender::len)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stops accepting jobs, drains the queue, and joins every worker.
    pub fn shutdown(&mut self) {
        drop(self.queue.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// A pool with a queue but no worker threads, so tests can fill the
    /// queue deterministically.
    #[cfg(test)]
    fn without_workers(queue_capacity: usize) -> Self {
        let capacity = queue_capacity.max(1);
        let (tx, rx) = bounded::<VerifyJob>(capacity);
        // keep the receiver alive for the pool's lifetime
        std::mem::forget(rx);
        WorkerPool { queue: Some(tx), workers: Vec::new(), capacity }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Receiver<VerifyJob>, cache: &VerificationCache, recorder: &MemoryRecorder) {
    while let Ok(job) = rx.recv() {
        let outcome = run_job(&job, cache, recorder);
        // a vanished requester is not the worker's problem
        let _ = job.reply.send(outcome);
    }
}

fn run_job(
    job: &VerifyJob,
    cache: &VerificationCache,
    recorder: &MemoryRecorder,
) -> Result<VerifyOutcome, String> {
    record_interval(recorder, job.trace, "server.queue_wait", job.enqueued_at, Instant::now());
    let mut span = TracedSpan::child_of(recorder, "server.verify", job.trace);
    let (cached_report, challenge_fp, answer_fp) = {
        let _probe = span.child("server.cache_probe");
        let challenge_fp = challenge_fingerprint(&job.challenge);
        let answer_fp = answer_fingerprint(&job.answer);
        (cache.get(&job.entry.device_id, challenge_fp, answer_fp), challenge_fp, answer_fp)
    };
    if let Some(report) = cached_report {
        recorder.counter_add("server.cache.hits", 1);
        span.attr("cached", true);
        return Ok(VerifyOutcome { report, cached: true });
    }
    recorder.counter_add("server.cache.misses", 1);
    span.attr("cached", false);
    match job.entry.verifier.verify(&job.challenge, &job.answer) {
        Ok(report) => {
            let evicted = cache.insert(&job.entry.device_id, challenge_fp, answer_fp, report);
            recorder.counter_add("server.cache.evictions", evicted as u64);
            Ok(VerifyOutcome { report, cached: false })
        }
        Err(e) => {
            recorder.warn(&format!("verification failed for {}: {e}", job.entry.device_id));
            Err(e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppuf_analog::variation::Environment;
    use ppuf_core::challenge::ChallengeSpace;
    use ppuf_core::device::{Ppuf, PpufConfig};
    use ppuf_core::protocol::auth::{prove, Verifier};
    use ppuf_core::protocol::issuer::ChallengeIssuer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn device_fixture() -> (Arc<DeviceEntry>, Challenge, ProverAnswer) {
        let ppuf = Ppuf::generate(PpufConfig::paper(6, 2), 11).unwrap();
        let model = ppuf.public_model().unwrap();
        let space = ChallengeSpace::new(model.nodes(), model.grid().grid()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let challenge = space.random(&mut rng);
        let answer = prove(&ppuf.executor(Environment::NOMINAL), &challenge).unwrap();
        let entry = Arc::new(DeviceEntry {
            device_id: "dev".into(),
            model: model.clone(),
            verifier: Verifier::new(model),
            issuer: ChallengeIssuer::new(space, 13),
        });
        (entry, challenge, answer)
    }

    fn submit_and_wait(
        pool: &WorkerPool,
        entry: &Arc<DeviceEntry>,
        challenge: &Challenge,
        answer: &ProverAnswer,
        trace: Option<SpanContext>,
    ) -> VerifyOutcome {
        let (reply_tx, reply_rx) = bounded(1);
        pool.submit(VerifyJob::new(
            Arc::clone(entry),
            challenge.clone(),
            answer.clone(),
            reply_tx,
            trace,
        ))
        .unwrap();
        reply_rx.recv().unwrap().unwrap()
    }

    #[test]
    fn verifies_and_caches() {
        let cache = Arc::new(VerificationCache::new(4, 64));
        let recorder = Arc::new(MemoryRecorder::new());
        let pool = WorkerPool::new(2, 8, Arc::clone(&cache), Arc::clone(&recorder));
        let (entry, challenge, answer) = device_fixture();

        let first = submit_and_wait(&pool, &entry, &challenge, &answer, None);
        assert!(first.report.accepted());
        assert!(!first.cached);
        let second = submit_and_wait(&pool, &entry, &challenge, &answer, None);
        assert!(second.report.accepted());
        assert!(second.cached, "repeat of the same answer must hit the cache");
        assert_eq!(recorder.counter("server.cache.hits"), 1);
        assert_eq!(recorder.counter("server.cache.misses"), 1);
        assert_eq!(recorder.span_stats("server.verify").unwrap().count, 2);
        assert_eq!(recorder.span_stats("server.queue_wait").unwrap().count, 2);
        assert_eq!(recorder.span_stats("server.cache_probe").unwrap().count, 2);
    }

    #[test]
    fn worker_spans_land_in_the_submitters_trace() {
        let cache = Arc::new(VerificationCache::new(4, 64));
        let recorder = Arc::new(MemoryRecorder::new());
        let pool = WorkerPool::new(1, 8, Arc::clone(&cache), Arc::clone(&recorder));
        let (entry, challenge, answer) = device_fixture();

        let trace = ppuf_telemetry::next_trace_id();
        {
            let root = TracedSpan::root(recorder.as_ref(), "server.request", trace);
            submit_and_wait(&pool, &entry, &challenge, &answer, root.context());
        }
        let tree = recorder.assemble_trace(trace).expect("trace recorded").expect("well-formed");
        assert!(tree.contains("server.queue_wait"));
        assert!(tree.contains("server.cache_probe"));
        assert!(tree.contains("server.verify"));
        assert!(tree.durations_contained());
    }

    fn job(entry: &Arc<DeviceEntry>, challenge: &Challenge, answer: &ProverAnswer) -> VerifyJob {
        let (reply_tx, _) = bounded(1);
        VerifyJob::new(Arc::clone(entry), challenge.clone(), answer.clone(), reply_tx, None)
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let (entry, challenge, answer) = device_fixture();
        // no workers draining, so the queue fills deterministically
        let mut pool = WorkerPool::without_workers(2);
        assert_eq!(pool.capacity(), 2);
        pool.submit(job(&entry, &challenge, &answer)).unwrap();
        pool.submit(job(&entry, &challenge, &answer)).unwrap();
        assert_eq!(
            pool.submit(job(&entry, &challenge, &answer)),
            Err(SubmitError::QueueFull),
            "third job into a cap-2 queue must be shed"
        );
        pool.shutdown();
        assert_eq!(pool.submit(job(&entry, &challenge, &answer)), Err(SubmitError::Closed));
    }
}
