//! Multiplexed async client: many connections, pipelined requests, one
//! thread.
//!
//! [`drive`] opens [`MuxConfig::connections`] sockets against a server,
//! keeps up to [`MuxConfig::pipeline`] requests in flight on each, and
//! pumps them all from a single epoll event loop — the client-side twin
//! of [`crate::reactor`]. Traffic content is delegated to a [`Driver`]:
//! the engine asks it for the next outbound item whenever a connection
//! has pipeline room and hands every response back with its measured
//! latency, so cohort logic (honest / impostor / garbage, see
//! [`crate::loadgen`]) stays out of the I/O machinery.
//!
//! On the binary wire the engine assigns each request a correlation id
//! and **verifies the echo**: a response whose id was never issued (or
//! was already answered) on that connection fails the run. On the JSON
//! wire, responses are matched to requests in order — the wire-1.x
//! contract the server's async tier preserves.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use mio::{Events, Interest, Mode, Poll, Token};
use serde::{Deserialize, Serialize};

use crate::wire::{self, Request, Response, TracedRequest, TracedResponse, MAX_FRAME_LEN};
use crate::wire2;

/// Which protocol to speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireFlavor {
    /// Wire 1.x length-prefixed JSON.
    Json,
    /// Wire 2.0 binary frames with correlation ids.
    Binary,
}

/// Tuning for one [`drive`] run.
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Sockets to open.
    pub connections: usize,
    /// Maximum requests in flight per connection.
    pub pipeline: usize,
    /// Protocol to speak on every connection.
    pub wire: WireFlavor,
    /// Poll timeout — the cadence at which time-gated drivers (e.g. an
    /// impostor waiting out a deadline) are re-consulted.
    pub poll_timeout: Duration,
    /// A run with no forward progress for this long aborts.
    pub stall_timeout: Duration,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            connections: 1,
            pipeline: 1,
            wire: WireFlavor::Json,
            poll_timeout: Duration::from_millis(10),
            stall_timeout: Duration::from_secs(60),
        }
    }
}

/// One outbound item a [`Driver`] can emit.
#[derive(Debug)]
pub enum Outbound {
    /// A typed request. On the JSON wire, `trace` wraps it in a wire-1.1
    /// envelope; the binary wire ignores it (correlation ids already
    /// match responses to requests).
    Request {
        /// The request to send.
        request: Request,
        /// Optional wire-1.1 trace envelope id (JSON wire only).
        trace: Option<u64>,
    },
    /// Pre-encoded bytes sent verbatim — the driver is responsible for
    /// correct framing (including the correlation id it was given, on
    /// the binary wire). The engine still expects exactly one response.
    Raw(Vec<u8>),
}

/// Supplies traffic to [`drive`] and consumes the responses.
pub trait Driver {
    /// Asks for the next item on connection `conn`. `corr` is the
    /// correlation id the engine will use for it on the binary wire
    /// (embed it when returning [`Outbound::Raw`] binary frames). Return
    /// `None` when the connection has nothing to send *right now* — the
    /// engine asks again every loop, so time-gated sends simply return
    /// `None` until due. `tag` is returned with the matching response.
    fn next(&mut self, conn: usize, corr: u64) -> Option<(Outbound, u64)>;

    /// Delivers the response to the request tagged `tag` on `conn`,
    /// with the request's wire latency and (JSON wire) any echoed
    /// envelope trace id.
    fn done(
        &mut self,
        conn: usize,
        tag: u64,
        response: Response,
        trace_echo: Option<u64>,
        latency: Duration,
    );

    /// `true` once every expected response has been consumed.
    fn finished(&self) -> bool;
}

/// Transport-level outcome of a [`drive`] run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MuxStats {
    /// Requests written to sockets.
    pub requests_sent: u64,
    /// Responses received and delivered to the driver.
    pub responses: u64,
    /// Binary responses whose correlation id matched an outstanding
    /// request (equals `responses` on a correct binary-wire server).
    pub corr_echoed: u64,
    /// Peak simultaneously in-flight requests across all connections.
    pub peak_in_flight: usize,
    /// Connections opened.
    pub connections: usize,
}

struct Pending {
    tag: u64,
    sent_at: Instant,
}

struct MConn {
    stream: TcpStream,
    wbuf: Vec<u8>,
    wpos: usize,
    rbuf: Vec<u8>,
    /// JSON wire: responses match requests in FIFO order.
    json_pending: VecDeque<Pending>,
    /// Binary wire: responses match by correlation id.
    bin_pending: HashMap<u64, Pending>,
    next_corr: u64,
    reg_write: bool,
}

impl MConn {
    fn in_flight(&self) -> usize {
        self.json_pending.len() + self.bin_pending.len()
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "wrote 0 bytes")),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }
}

/// Runs one multiplexed client session to completion.
///
/// # Errors
///
/// Returns a message on connect failure, transport failure, a protocol
/// breach (unparseable response, correlation id never issued,
/// unsolicited response, server EOF with requests outstanding), or a
/// stall longer than [`MuxConfig::stall_timeout`].
pub fn drive(
    addr: SocketAddr,
    config: &MuxConfig,
    driver: &mut dyn Driver,
) -> Result<MuxStats, String> {
    let poll = Poll::new().map_err(|e| format!("poller creation failed: {e}"))?;
    let mut conns = Vec::with_capacity(config.connections);
    for i in 0..config.connections {
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("connect {i}/{} failed: {e}", config.connections))?;
        stream.set_nonblocking(true).map_err(|e| format!("nonblocking failed: {e}"))?;
        let _ = stream.set_nodelay(true);
        poll.register(&stream, Token(i), Interest::READABLE, Mode::Level)
            .map_err(|e| format!("register failed: {e}"))?;
        conns.push(MConn {
            stream,
            wbuf: Vec::new(),
            wpos: 0,
            rbuf: Vec::new(),
            json_pending: VecDeque::new(),
            bin_pending: HashMap::new(),
            next_corr: 1,
            reg_write: false,
        });
    }

    let mut stats = MuxStats { connections: config.connections, ..MuxStats::default() };
    let mut events = Events::with_capacity(1024.min(config.connections.max(8)));
    let mut last_progress = Instant::now();
    loop {
        let mut progress = false;
        // fill: give every connection with pipeline room fresh work
        for (i, conn) in conns.iter_mut().enumerate() {
            progress |=
                fill(conn, i, config, driver, &mut stats).map_err(|e| format!("conn {i}: {e}"))?;
        }
        let in_flight: usize = conns.iter().map(MConn::in_flight).sum();
        stats.peak_in_flight = stats.peak_in_flight.max(in_flight);
        if driver.finished() && in_flight == 0 {
            break;
        }

        poll.poll(&mut events, Some(config.poll_timeout))
            .map_err(|e| format!("poll failed: {e}"))?;
        for event in &events {
            let i = event.token().0;
            let Some(conn) = conns.get_mut(i) else { continue };
            if event.is_writable() {
                conn.flush().map_err(|e| format!("conn {i}: write failed: {e}"))?;
                progress = true;
            }
            if event.is_readable() {
                progress |= pump_responses(conn, i, config, driver, &mut stats)?;
            }
        }
        // keep write-interest registrations in step with buffered bytes
        for (i, conn) in conns.iter_mut().enumerate() {
            let want = conn.wants_write();
            if want != conn.reg_write {
                let interest = if want {
                    Interest::READABLE.add(Interest::WRITABLE)
                } else {
                    Interest::READABLE
                };
                poll.reregister(&conn.stream, Token(i), interest, Mode::Level)
                    .map_err(|e| format!("reregister failed: {e}"))?;
                conn.reg_write = want;
            }
        }

        let now = Instant::now();
        if progress {
            last_progress = now;
        } else if now.duration_since(last_progress) > config.stall_timeout {
            return Err(format!(
                "no progress for {:?} with {in_flight} requests outstanding",
                config.stall_timeout
            ));
        }
    }
    Ok(stats)
}

/// Pumps the driver into one connection until its pipeline is full (or
/// the driver has nothing ready). Returns whether anything was sent.
fn fill(
    conn: &mut MConn,
    idx: usize,
    config: &MuxConfig,
    driver: &mut dyn Driver,
    stats: &mut MuxStats,
) -> io::Result<bool> {
    let mut sent = false;
    while conn.in_flight() < config.pipeline {
        let corr = conn.next_corr;
        let Some((outbound, tag)) = driver.next(idx, corr) else { break };
        conn.next_corr += 1;
        let pending = Pending { tag, sent_at: Instant::now() };
        match outbound {
            Outbound::Request { request, trace } => match config.wire {
                WireFlavor::Json => {
                    let written = match trace {
                        Some(id) => {
                            wire::send_message(&mut conn.wbuf, &TracedRequest::traced(id, request))
                        }
                        None => wire::send_message(&mut conn.wbuf, &request),
                    };
                    written?;
                    conn.json_pending.push_back(pending);
                }
                WireFlavor::Binary => {
                    conn.wbuf.extend_from_slice(&wire2::encode_request(corr, &request));
                    conn.bin_pending.insert(corr, pending);
                }
            },
            Outbound::Raw(bytes) => {
                conn.wbuf.extend_from_slice(&bytes);
                match config.wire {
                    WireFlavor::Json => conn.json_pending.push_back(pending),
                    WireFlavor::Binary => {
                        conn.bin_pending.insert(corr, pending);
                    }
                }
            }
        }
        stats.requests_sent += 1;
        sent = true;
    }
    if sent {
        conn.flush()?;
    }
    Ok(sent)
}

/// Reads everything available on one connection and delivers complete
/// responses to the driver. Returns whether any response arrived.
fn pump_responses(
    conn: &mut MConn,
    idx: usize,
    config: &MuxConfig,
    driver: &mut dyn Driver,
    stats: &mut MuxStats,
) -> Result<bool, String> {
    let mut chunk = [0u8; 16 * 1024];
    let mut eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("conn {idx}: read failed: {e}")),
        }
    }
    let mut any = false;
    let mut consumed = 0usize;
    loop {
        let frame = match config.wire {
            WireFlavor::Json => parse_json_response(&conn.rbuf[consumed..])
                .map_err(|e| format!("conn {idx}: {e}"))?,
            WireFlavor::Binary => parse_binary_response(&conn.rbuf[consumed..])
                .map_err(|e| format!("conn {idx}: {e}"))?,
        };
        let Some((used, corr, response, trace_echo)) = frame else { break };
        consumed += used;
        let pending = match config.wire {
            WireFlavor::Json => conn.json_pending.pop_front(),
            WireFlavor::Binary => {
                let p = conn.bin_pending.remove(&corr);
                if p.is_some() {
                    stats.corr_echoed += 1;
                }
                p
            }
        };
        let Some(pending) = pending else {
            return Err(match config.wire {
                WireFlavor::Json => format!("conn {idx}: unsolicited response"),
                WireFlavor::Binary => {
                    format!("conn {idx}: response for correlation id {corr} never issued")
                }
            });
        };
        stats.responses += 1;
        any = true;
        driver.done(idx, pending.tag, response, trace_echo, pending.sent_at.elapsed());
    }
    if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
    if eof && (conn.in_flight() > 0 || !conn.rbuf.is_empty()) {
        return Err(format!(
            "conn {idx}: server closed with {} requests outstanding",
            conn.in_flight()
        ));
    }
    Ok(any)
}

/// One parsed response off the front of a read buffer:
/// `(consumed, corr, response, trace_echo)`.
type ParsedResponse = (usize, u64, Response, Option<u64>);

/// Parses one JSON response frame off the front of `buf`: `Ok(None)` on
/// a partial frame, else `(consumed, 0, response, trace_echo)`.
fn parse_json_response(buf: &[u8]) -> io::Result<Option<ParsedResponse>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("response frame length {len} exceeds cap"),
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let text = std::str::from_utf8(&buf[4..4 + len])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let envelope: TracedResponse = serde_json::from_str(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))?;
    Ok(Some((4 + len, 0, envelope.body, envelope.trace_id)))
}

/// Parses one binary response frame off the front of `buf`.
fn parse_binary_response(buf: &[u8]) -> io::Result<Option<ParsedResponse>> {
    match wire2::parse_frame(buf) {
        Ok(None) => Ok(None),
        Ok(Some((frame, used))) => {
            let response = wire2::decode_response(&frame)?;
            Ok(Some((used, frame.corr, response, None)))
        }
        Err(e) => Err(e.into()),
    }
}
