//! Locks the zero-cost guarantee: against the [`NoopRecorder`], the full
//! per-request tracing path — id generation, root and child spans,
//! attributes, cross-thread intervals, events — performs no heap
//! allocation at all; neither does recording into a pre-built
//! [`LogHistogram`] nor pushing at a disabled [`FlightRecorder`].
//!
//! This file intentionally holds a single test: the counting allocator is
//! process-global, and a concurrently-running sibling test would perturb
//! the count.

// with profile-alloc the crate installs its own global allocator, which
// conflicts with this file's; the budget is measured without the feature
#![cfg(not(feature = "profile-alloc"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ppuf_telemetry::{
    next_trace_id, record_interval, FlightRecorder, LogHistogram, NoopRecorder, Profiler, Recorder,
    TracedSpan,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_path_never_allocates() {
    let recorder = NoopRecorder;
    let enqueue = Instant::now();
    let flight = FlightRecorder::disabled();
    // warmed profiler: the path is interned once here, then every later
    // record_path looks it up by &str and bumps fixed slots
    let profiler = Profiler::new();
    profiler.record_path("analog.dc.solve", Duration::from_micros(1), Duration::from_micros(1));

    let run = |hist: &mut LogHistogram| -> u64 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..1_000u64 {
            // the exact call shape the server runs per wire request
            let trace = next_trace_id();
            let mut root = TracedSpan::root(&recorder, "server.request", trace);
            root.attr("kind", "SubmitAnswer");
            assert!(root.context().is_none());
            record_interval(
                &recorder,
                root.context(),
                "server.queue_wait",
                enqueue,
                Instant::now(),
            );
            {
                let mut verify = root.child("server.verify");
                verify.attr("nonce", i);
                let _probe = verify.child("server.cache_probe");
            }
            recorder.record_event("analog.dc.residual_trace", &[1e-3, 1e-9]);
            // always-on latency accounting into the bounded histogram
            hist.record(enqueue.elapsed().as_secs_f64());
            // disabled flight recorder rejects before locking or copying;
            // Vec::new() is allocation-free, matching the empty span set a
            // tracing-disabled recorder hands back
            flight.push_trace("ok", Vec::new());
            flight.push_event("ignored", &[1.0, 2.0]);
            // a recorder without an attached profiler hands back None for
            // free, and recording a warmed path updates slots in place
            assert!(recorder.profiler().is_none());
            profiler.record_path(
                "analog.dc.solve",
                Duration::from_micros(2),
                Duration::from_micros(1),
            );
        }
        ALLOCATIONS.load(Ordering::SeqCst) - before
    };

    // the allocation counter is process-global, so the test harness's own
    // threads (e.g. the main thread parking on its result channel) can
    // add a one-off count concurrently with the measured window. A real
    // regression allocates on *every* pass, so measure up to three
    // passes and require one of them to be exactly zero.
    let mut counts = Vec::new();
    for _ in 0..3 {
        // pre-built outside the measured window: the histogram's bucket
        // array is a one-time construction cost, every record afterwards
        // must be a plain array increment
        let mut hist = LogHistogram::new();
        let allocated = run(&mut hist);
        assert_eq!(hist.len(), 1_000);
        if allocated == 0 {
            assert!(flight.is_empty());
            return;
        }
        counts.push(allocated);
    }
    panic!("the disabled tracing path allocated on every pass: {counts:?} over 1000 requests each");
}
