//! Property tests for the profiler's timing invariants: for any
//! reassembled trace, each span's children's wall-time sum fits inside
//! the parent's wall time (so derived self time is non-negative without
//! clamping), and when spans carry adversarially-skewed durations the
//! profiler clamps self time to zero and counts the skew instead of ever
//! reporting negative time.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use ppuf_telemetry::profile::Profiler;
use ppuf_telemetry::{
    assemble, next_trace_id, FinishedSpan, MemoryRecorder, SpanId, TraceId, TraceNode, TracedSpan,
};

fn drive(parent: &TracedSpan<'_>, node: usize, children: &[Vec<usize>], names: &[String]) {
    for &c in &children[node] {
        let child = parent.child(&names[c]);
        drive(&child, c, children, names);
    }
}

/// Sum of the immediate children's durations at every node must fit the
/// node's own duration.
fn children_sums_contained(node: &TraceNode) -> bool {
    let sum: Duration = node.children.iter().map(|c| c.span.duration).sum();
    sum <= node.span.duration && node.children.iter().all(children_sums_contained)
}

proptest! {
    /// Real nested RAII spans: any tree shape satisfies the timing
    /// invariant by construction, so observing the trace derives
    /// non-negative self time with zero skew clamps.
    #[test]
    fn nested_spans_never_need_a_skew_clamp(raw in proptest::collection::vec(any::<u64>(), 0..24)) {
        let n = raw.len() + 1;
        let parents: Vec<usize> =
            raw.iter().enumerate().map(|(i, r)| (*r as usize) % (i + 1)).collect();
        let mut children = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            children[*p].push(i + 1);
        }
        let names: Vec<String> = (0..n).map(|i| format!("span{i}")).collect();

        let mut recorder = MemoryRecorder::new();
        let profiler = Arc::new(Profiler::new());
        recorder.set_profiler(profiler.clone());
        let trace = next_trace_id();
        {
            let root = TracedSpan::root(&recorder, &names[0], trace);
            drive(&root, 0, &children, &names);
        }

        let spans = recorder.trace_spans(trace);
        let tree = match assemble(&spans) {
            Ok(tree) => tree,
            Err(err) => return Err(TestCaseError::fail(format!("assembly failed: {err}"))),
        };
        prop_assert!(
            children_sums_contained(&tree),
            "children's wall-time sum must fit the parent's wall time"
        );
        // the root finishing fed the subtree into the profiler already
        prop_assert_eq!(profiler.skew_clamps(), 0, "well-nested spans never clamp");
        let snap = profiler.snapshot();
        prop_assert_eq!(snap.len(), n, "unique names give one path per span");
        for (path, stats) in &snap {
            prop_assert!(stats.self_s >= 0.0, "negative self time at {path}");
            prop_assert!(
                stats.self_s <= stats.wall_s + 1e-12,
                "self above wall at {path}: {} > {}", stats.self_s, stats.wall_s
            );
        }
    }

    /// Synthetic spans with arbitrary (possibly skewed) durations: self
    /// time still never goes negative — overshoot clamps to zero and is
    /// counted in `skew_clamps`.
    #[test]
    fn skewed_durations_clamp_to_zero_self(
        raw in proptest::collection::vec((any::<u64>(), 0u64..5_000), 1..16)
    ) {
        let n = raw.len() + 1;
        let parents: Vec<usize> =
            raw.iter().enumerate().map(|(i, (r, _))| (*r as usize) % (i + 1)).collect();
        let origin = Instant::now();
        let trace = TraceId::from_raw(1).unwrap();
        let mut spans: Vec<FinishedSpan> = vec![FinishedSpan {
            trace,
            span: SpanId::from_raw(1).unwrap(),
            parent: None,
            name: "root".to_string(),
            start: origin,
            duration: Duration::from_micros(1_000),
            attrs: Vec::new(),
        }];
        for (i, (_, micros)) in raw.iter().enumerate() {
            spans.push(FinishedSpan {
                trace,
                span: SpanId::from_raw(i as u64 + 2).unwrap(),
                parent: SpanId::from_raw(parents[i] as u64 + 1),
                name: format!("s{}", i + 1),
                start: origin,
                duration: Duration::from_micros(*micros),
                attrs: Vec::new(),
            });
        }

        let profiler = Profiler::new();
        profiler.observe_root(&spans[0], &spans);
        let snap = profiler.snapshot();
        prop_assert_eq!(snap.len(), n, "every span records under its own path");
        for (path, stats) in &snap {
            prop_assert!(stats.self_s >= 0.0, "negative self time at {path}");
        }
        // count how many nodes are actually skewed and demand agreement
        let mut skewed = 0u64;
        for span in &spans {
            let child_sum: Duration = spans
                .iter()
                .filter(|s| s.parent == Some(span.span))
                .map(|s| s.duration)
                .sum();
            if child_sum > span.duration {
                skewed += 1;
            }
        }
        prop_assert_eq!(
            profiler.skew_clamps(),
            skewed,
            "each over-budget parent clamps exactly once"
        );
    }
}
