//! Property tests for the trace layer: any tree of nested [`TracedSpan`]s
//! must reassemble into a single rooted trace — no orphans, every child's
//! duration contained in its parent's — regardless of tree shape or the
//! order the spans are presented in.

use proptest::prelude::*;

use ppuf_telemetry::{assemble, next_trace_id, MemoryRecorder, TracedSpan};

/// Opens one child span per entry of `children[node]` and recurses, so
/// the RAII drop order reproduces exactly the generated tree shape.
fn drive(parent: &TracedSpan<'_>, node: usize, children: &[Vec<usize>], names: &[String]) {
    for &c in &children[node] {
        let mut child = parent.child(&names[c]);
        child.attr("node", c);
        drive(&child, c, children, names);
    }
}

proptest! {
    /// `raw[i]` picks the parent of node `i + 1` among the nodes created
    /// before it, which parameterizes every possible rooted tree shape
    /// (chains, stars, and everything between).
    #[test]
    fn any_nested_span_tree_reassembles(raw in proptest::collection::vec(any::<u64>(), 0..24)) {
        let n = raw.len() + 1;
        let parents: Vec<usize> =
            raw.iter().enumerate().map(|(i, r)| (*r as usize) % (i + 1)).collect();
        let mut children = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            children[*p].push(i + 1);
        }
        let names: Vec<String> = (0..n).map(|i| format!("span{i}")).collect();

        let recorder = MemoryRecorder::new();
        let trace = next_trace_id();
        {
            let root = TracedSpan::root(&recorder, &names[0], trace);
            drive(&root, 0, &children, &names);
        }

        let spans = recorder.trace_spans(trace);
        prop_assert_eq!(spans.len(), n);
        let tree = match assemble(&spans) {
            Ok(tree) => tree,
            Err(err) => return Err(TestCaseError::fail(format!("assembly failed: {err}"))),
        };
        prop_assert_eq!(tree.span_count(), n, "every span must appear exactly once");
        prop_assert_eq!(tree.span.name.as_str(), "span0", "the root span is the tree root");
        prop_assert!(tree.durations_contained(), "child durations must fit their parent's");

        // assembly must not depend on recording order
        let mut reversed = spans.clone();
        reversed.reverse();
        let tree2 = match assemble(&reversed) {
            Ok(tree) => tree,
            Err(err) => return Err(TestCaseError::fail(format!("reversed assembly: {err}"))),
        };
        prop_assert_eq!(tree2.span_count(), n);

        // removing the root must break assembly (the remaining spans all
        // have parents, so there is no root to hang them under)
        let headless: Vec<_> = spans.iter().filter(|s| s.parent.is_some()).cloned().collect();
        if !headless.is_empty() {
            prop_assert!(assemble(&headless).is_err());
        }
    }
}
