//! Allocation attribution through the `profile-alloc` counting
//! allocator: run with
//! `cargo test -p ppuf-telemetry --features profile-alloc`.

#![cfg(feature = "profile-alloc")]

use ppuf_telemetry::profile::{alloc, Profiler};

#[test]
fn alloc_scope_attributes_allocations_to_the_path() {
    let profiler = Profiler::new();
    {
        let _scope = profiler.alloc_scope("bench.allocating_phase");
        let v: Vec<u8> = Vec::with_capacity(4096);
        std::hint::black_box(&v);
        let s = String::from("attributed");
        std::hint::black_box(&s);
    }
    let snap = profiler.snapshot();
    let entry = snap.get("bench.allocating_phase").expect("alloc-only path appears in snapshot");
    assert!(entry.alloc_count >= 2, "at least the Vec and the String: {entry:?}");
    assert!(entry.alloc_bytes >= 4096, "the 4 KiB Vec is charged: {entry:?}");
}

#[test]
fn scopes_delta_against_per_thread_totals() {
    let (allocs_before, bytes_before) = alloc::thread_totals();
    let v: Vec<u64> = Vec::with_capacity(512);
    std::hint::black_box(&v);
    let (allocs_after, bytes_after) = alloc::thread_totals();
    assert!(allocs_after > allocs_before);
    assert!(bytes_after >= bytes_before + 512 * 8);

    // another thread's allocations do not leak into this thread's scope
    let profiler = Profiler::new();
    {
        let _scope = profiler.alloc_scope("main_thread_only");
        std::thread::spawn(|| {
            let big: Vec<u8> = Vec::with_capacity(1 << 20);
            std::hint::black_box(&big);
        })
        .join()
        .unwrap();
    }
    let snap = profiler.snapshot();
    let entry = snap.get("main_thread_only").expect("scope recorded");
    assert!(entry.alloc_bytes < 1 << 20, "the worker's 1 MiB stays unattributed: {entry:?}");
}
