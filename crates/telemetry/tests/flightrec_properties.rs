//! Property tests for the flight-recorder ring under concurrent writers:
//! whatever the thread interleaving, memory stays bounded at the
//! configured capacity, eviction is exactly drop-oldest in global push
//! order, and a dump taken while other threads keep recording never loses
//! the span tree that triggered it.

use proptest::prelude::*;

use ppuf_telemetry::{next_trace_id, FinishedSpan, FlightRecorder, MemoryRecorder, TracedSpan};

/// Builds one finished two-span trace through the real tracing path.
fn make_trace(recorder: &MemoryRecorder, name: &str) -> Vec<FinishedSpan> {
    let trace = next_trace_id();
    {
        let root = TracedSpan::root(recorder, name, trace);
        let _child = root.child("verify");
    }
    recorder.trace_spans(trace)
}

proptest! {
    /// `capacity` traces max, `writers × per_writer` pushes racing: the
    /// ring must end bounded, account every drop, and retain exactly the
    /// globally newest `capacity` pushes in push order.
    #[test]
    fn concurrent_writers_keep_the_ring_bounded_and_oldest_dropped(
        capacity in 1usize..8,
        writers in 1usize..5,
        per_writer in 0usize..12,
    ) {
        let recorder = MemoryRecorder::with_limits(256, 4);
        let flight = FlightRecorder::new(capacity, 8);
        // span trees are pre-built so the racing section is only pushes
        let batches: Vec<Vec<Vec<FinishedSpan>>> = (0..writers)
            .map(|w| {
                (0..per_writer).map(|i| make_trace(&recorder, &format!("req{w}x{i}"))).collect()
            })
            .collect();
        std::thread::scope(|scope| {
            for (w, batch) in batches.into_iter().enumerate() {
                let flight = &flight;
                scope.spawn(move || {
                    for spans in batch {
                        assert!(flight.push_trace(&format!("writer{w}"), spans));
                    }
                });
            }
        });
        let total = (writers * per_writer) as u64;
        let len = flight.len() as u64;
        prop_assert_eq!(len, total.min(capacity as u64), "ring must stay bounded");
        prop_assert_eq!(flight.dropped(), total - len, "every eviction must be counted");
        let seqs: Vec<u64> = flight.traces().iter().map(|t| t.seq).collect();
        let expected: Vec<u64> = (total - len..total).collect();
        prop_assert_eq!(seqs, expected, "retained traces must be the newest, oldest first");
    }

    /// Dumps fired from one thread while others keep pushing: every dump
    /// must contain its own triggering trace, no matter how much traffic
    /// races it — even at capacity 1, where any non-atomic push-then-dump
    /// would lose the trigger to an interleaved push.
    #[test]
    fn dump_while_recording_never_loses_the_trigger(
        capacity in 1usize..4,
        dumps in 1usize..6,
        noise in 1usize..24,
    ) {
        let recorder = MemoryRecorder::with_limits(256, 4);
        let flight = FlightRecorder::new(capacity, 8);
        let noise_batch: Vec<Vec<FinishedSpan>> =
            (0..noise).map(|i| make_trace(&recorder, &format!("noise{i}"))).collect();
        let triggers: Vec<Vec<FinishedSpan>> =
            (0..dumps).map(|i| make_trace(&recorder, &format!("trigger{i}"))).collect();
        let trigger_ids: Vec<String> =
            triggers.iter().map(|t| format!("{}", t[0].trace)).collect();
        let mut reports = Vec::new();
        std::thread::scope(|scope| {
            let flight_ref = &flight;
            scope.spawn(move || {
                for spans in noise_batch {
                    flight_ref.push_trace("noise", spans);
                }
            });
            for spans in triggers {
                reports.push(flight.dump_with("burst", "trigger", spans));
            }
        });
        for (report, id) in reports.iter().zip(&trigger_ids) {
            prop_assert!(
                report.traces.keys().any(|k| k.ends_with(id.as_str())),
                "dump lost its triggering trace {id}"
            );
            prop_assert!(report.traces.len() <= capacity, "dump must respect the ring bound");
        }
    }
}
