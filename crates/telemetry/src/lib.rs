//! Observability for the maxflow-ppuf solver stack: monotonic counters,
//! value histograms, lightweight wall-clock spans, and warnings, behind a
//! [`Recorder`] trait whose default implementation ([`NoopRecorder`]) costs
//! nothing.
//!
//! The crate is dependency-free. Instrumented code reports aggregates at
//! *solve granularity* — a solver counts its iterations in locals and calls
//! the recorder once per solve — so the dynamic dispatch here never sits on
//! a hot inner loop.
//!
//! # Quick tour
//!
//! ```
//! use ppuf_telemetry::{MemoryRecorder, Recorder, Span};
//!
//! let recorder = MemoryRecorder::new();
//! {
//!     let _span = Span::enter(&recorder, "demo.solve");
//!     recorder.counter_add("demo.iterations", 17);
//!     recorder.observe("demo.residual", 1.5e-9);
//! }
//! assert_eq!(recorder.counter("demo.iterations"), 17);
//! assert_eq!(recorder.span_stats("demo.solve").unwrap().count, 1);
//! ```
//!
//! For machine-readable output, [`JsonReporter`] wraps a [`MemoryRecorder`]
//! and renders a schema-versioned [`report::Report`].

pub mod events;
pub mod flightrec;
pub mod hist;
pub mod profile;
pub mod prometheus;
pub mod report;
pub mod samples;
pub mod trace;

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use events::{Event, EventLog, DEFAULT_EVENT_CAPACITY};
pub use flightrec::{FlightRecorder, RecordedTrace, DEFAULT_FLIGHT_EVENTS, DEFAULT_FLIGHT_TRACES};
pub use hist::{HistBucket, HistogramSnapshot, LogHistogram, HIST_BUCKET_COUNT, HIST_MIN_VALUE};
pub use profile::{AllocScope, PathId, ProfileStats, Profiler};
pub use report::{profile_to_json, JsonReporter, Report, ReportError, SCHEMA_VERSION};
pub use samples::{SampleSeries, SampleSummary};
pub use trace::{
    assemble, next_trace_id, record_interval, record_root_interval, FinishedSpan, SpanContext,
    SpanId, TraceError, TraceId, TraceNode, TracedSpan,
};

/// Default number of traces a [`MemoryRecorder`] retains before evicting
/// the oldest.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Spans retained per trace before further spans are dropped (a runaway
/// instrumentation loop must not balloon the recorder).
const MAX_SPANS_PER_TRACE: usize = 512;

/// Sink for instrumentation events.
///
/// All methods take `&self`; implementations are internally synchronized so
/// one recorder can be shared across solver threads.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, name: &str, delta: u64);

    /// Records one sample of the value distribution `name`.
    fn observe(&self, name: &str, value: f64);

    /// Records one timed interval for the span `name`. Usually called by
    /// [`Span`]'s drop, not directly.
    fn record_span(&self, name: &str, duration: Duration);

    /// Reports a human-readable anomaly (non-convergence, fallback taken).
    fn warn(&self, message: &str);

    /// Whether this recorder retains hierarchical trace spans. When this
    /// returns `false` (the default), [`TracedSpan`] skips id allocation,
    /// attribute formatting, and
    /// [`record_trace_span`](Recorder::record_trace_span) entirely, so the
    /// tracing path stays allocation-free against a disabled recorder.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Retains one completed trace span. Only called for recorders whose
    /// [`trace_enabled`](Recorder::trace_enabled) returns `true`.
    fn record_trace_span(&self, span: FinishedSpan) {
        let _ = span;
    }

    /// Whether [`record_event`](Recorder::record_event) retains anything,
    /// so emitters can skip building payloads nobody will keep.
    fn events_enabled(&self) -> bool {
        false
    }

    /// Appends a structured diagnostic event — a named vector of numbers,
    /// e.g. a Newton residual trajectory — to the recorder's bounded
    /// event log. Discarded by default.
    fn record_event(&self, name: &str, values: &[f64]) {
        let _ = (name, values);
    }

    /// The hierarchical [`Profiler`] attached to this recorder, if any.
    /// Instrumented code uses this to record per-phase call paths
    /// ([`Profiler::record_path`]) without each layer threading its own
    /// profiler handle; the default (`None`) keeps disabled recorders
    /// free of profiling cost.
    fn profiler(&self) -> Option<&Profiler> {
        None
    }

    /// Starts a wall-clock span ended when the guard drops.
    ///
    /// On `&dyn Recorder` use [`Span::enter`] instead; this sugar is only
    /// callable on concrete recorder types.
    fn span<'a>(&'a self, name: &'a str) -> Span<'a>
    where
        Self: Sized,
    {
        Span::enter(self, name)
    }
}

/// Recorder that discards everything. Every method is an empty inline body,
/// so instrumented code paths run at full speed when nobody is listening.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn counter_add(&self, _name: &str, _delta: u64) {}

    #[inline]
    fn observe(&self, _name: &str, _value: f64) {}

    #[inline]
    fn record_span(&self, _name: &str, _duration: Duration) {}

    #[inline]
    fn warn(&self, _message: &str) {}

    #[inline]
    fn trace_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record_trace_span(&self, _span: FinishedSpan) {}

    #[inline]
    fn events_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record_event(&self, _name: &str, _values: &[f64]) {}
}

/// The shared no-op recorder, for APIs that want a `&'static dyn Recorder`
/// default.
pub static NOOP: NoopRecorder = NoopRecorder;

/// RAII wall-clock timer; reports its lifetime to the recorder on drop.
#[must_use = "a span measures until it is dropped; binding it to _ ends it immediately"]
pub struct Span<'a> {
    recorder: &'a dyn Recorder,
    name: &'a str,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing `name` against `recorder`.
    pub fn enter(recorder: &'a dyn Recorder, name: &'a str) -> Self {
        Span { recorder, name, start: Instant::now() }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.recorder.record_span(self.name, self.start.elapsed());
    }
}

/// Count / sum / min / max summary of an observed distribution.
///
/// Enough to answer "how many, how big on average, how bad in the worst
/// case" without storing samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Arithmetic mean of the samples; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

#[derive(Debug, Default)]
struct MemoryState {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Summary>,
    spans: BTreeMap<String, Summary>,
    span_hists: BTreeMap<String, LogHistogram>,
    warnings: Vec<String>,
    samples: BTreeMap<String, SampleSeries>,
    traces: BTreeMap<u64, Vec<FinishedSpan>>,
    trace_order: VecDeque<u64>,
}

/// Recorder that aggregates everything in memory behind a mutex.
///
/// Spans are stored as [`Summary`] distributions of seconds. Read results
/// back with [`counter`](MemoryRecorder::counter),
/// [`histogram`](MemoryRecorder::histogram),
/// [`span_stats`](MemoryRecorder::span_stats), or snapshot the whole state
/// as a [`Report`].
#[derive(Debug)]
pub struct MemoryRecorder {
    state: Mutex<MemoryState>,
    events: EventLog,
    trace_capacity: usize,
    profiler: Option<Arc<Profiler>>,
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        MemoryRecorder {
            state: Mutex::default(),
            events: EventLog::default(),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            profiler: None,
        }
    }
}

impl MemoryRecorder {
    /// Creates an empty recorder with default trace/event retention
    /// ([`DEFAULT_TRACE_CAPACITY`], [`DEFAULT_EVENT_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder retaining at most `traces` traces and
    /// `events` events (each clamped to at least 1); older entries are
    /// evicted oldest-first and counted under `telemetry.traces.dropped`
    /// / `telemetry.events.dropped`.
    pub fn with_limits(traces: usize, events: usize) -> Self {
        MemoryRecorder {
            state: Mutex::default(),
            events: EventLog::new(events),
            trace_capacity: traces.max(1),
            profiler: None,
        }
    }

    /// Attaches a hierarchical [`Profiler`]. Once attached, every root
    /// span that finishes feeds its whole subtree into the profiler
    /// ([`Profiler::observe_root`]) — spans finish child-before-parent,
    /// so the subtree is complete when the root arrives — and
    /// [`snapshot`](MemoryRecorder::snapshot) carries the profile
    /// section. Called before the recorder is shared (it takes `&mut`).
    pub fn set_profiler(&mut self, profiler: Arc<Profiler>) {
        self.profiler = Some(profiler);
    }

    /// Current value of a counter; 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Summary of an observed distribution, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<Summary> {
        self.lock().histograms.get(name).copied()
    }

    /// Summary (in seconds) of a span's recorded intervals.
    pub fn span_stats(&self, name: &str) -> Option<Summary> {
        self.lock().spans.get(name).copied()
    }

    /// Bounded log-bucketed histogram of a span's recorded intervals
    /// (seconds), if any interval was recorded. Every
    /// [`record_span`](Recorder::record_span) feeds this alongside the
    /// flat [`Summary`], so percentiles are always available without
    /// retaining raw samples.
    pub fn span_histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.lock().span_hists.get(name).map(LogHistogram::snapshot)
    }

    /// Percentile estimate (`0.0 ≤ q ≤ 1.0`) of a span's recorded
    /// intervals in seconds; `None` when the span never fired.
    pub fn span_quantile(&self, name: &str, q: f64) -> Option<f64> {
        self.lock().span_hists.get(name).and_then(|h| h.quantile(q))
    }

    /// All warnings, in the order they were raised.
    pub fn warnings(&self) -> Vec<String> {
        self.lock().warnings.clone()
    }

    /// Merges a raw sample series (e.g. per-solve latencies) into the
    /// series named `name`, so percentiles survive into the [`Report`].
    pub fn record_samples(&self, name: &str, series: &SampleSeries) {
        if series.is_empty() {
            return;
        }
        let mut state = self.lock();
        state.samples.entry(name.to_string()).or_default().merge(series);
    }

    /// Percentile summary of an accumulated sample series, if non-empty.
    pub fn sample_summary(&self, name: &str) -> Option<SampleSummary> {
        self.lock().samples.get(name).and_then(SampleSeries::summary)
    }

    /// All spans recorded under `trace`, in recording order; empty when
    /// the trace is unknown (never seen, or already evicted).
    pub fn trace_spans(&self, trace: TraceId) -> Vec<FinishedSpan> {
        self.lock().traces.get(&trace.get()).cloned().unwrap_or_default()
    }

    /// Ids of the retained traces, oldest first.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        self.lock().trace_order.iter().filter_map(|id| TraceId::from_raw(*id)).collect()
    }

    /// Assembles the spans of `trace` into a tree; `None` when the trace
    /// is unknown.
    pub fn assemble_trace(&self, trace: TraceId) -> Option<Result<TraceNode, TraceError>> {
        let spans = self.trace_spans(trace);
        if spans.is_empty() {
            None
        } else {
            Some(trace::assemble(&spans))
        }
    }

    /// The retained diagnostic events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.snapshot()
    }

    /// Total events discarded due to event-log overflow.
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Copies the current state into a schema-versioned [`Report`].
    pub fn snapshot(&self, label: &str) -> Report {
        let events = self
            .events
            .snapshot()
            .into_iter()
            .map(|e| report::EventRecord { seq: e.seq, name: e.name, values: e.values })
            .collect();
        let state = self.lock();
        let traces = state
            .trace_order
            .iter()
            .filter_map(|id| state.traces.get(id).map(|spans| (*id, spans)))
            .map(|(id, spans)| (format!("{id:016x}"), trace_records(spans)))
            .collect();
        let mut counters = state.counters.clone();
        let profile = match &self.profiler {
            Some(profiler) => {
                let skew = profiler.skew_clamps();
                if skew > 0 {
                    counters.insert("telemetry.profile.skew_clamps".to_string(), skew);
                }
                profiler.snapshot()
            }
            None => BTreeMap::new(),
        };
        Report {
            schema_version: SCHEMA_VERSION,
            label: label.to_string(),
            counters,
            histograms: state.histograms.clone(),
            spans: state.spans.clone(),
            warnings: state.warnings.clone(),
            samples: state
                .samples
                .iter()
                .filter_map(|(name, series)| series.summary().map(|s| (name.clone(), s)))
                .collect(),
            hists: state
                .span_hists
                .iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
            profile,
            events,
            traces,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoryState> {
        // a poisoned lock only means another thread panicked mid-update;
        // telemetry should still be readable afterwards
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Renders one trace's spans with timestamps rebased to the trace's
/// earliest span start (instants are process-relative and meaningless in
/// a report).
pub(crate) fn trace_records(spans: &[FinishedSpan]) -> Vec<report::TraceSpanRecord> {
    let origin = spans.iter().map(|s| s.start).min();
    spans
        .iter()
        .map(|s| report::TraceSpanRecord {
            span: s.span.get(),
            parent: s.parent.map(SpanId::get),
            name: s.name.clone(),
            start_s: origin.map_or(0.0, |o| s.start.saturating_duration_since(o).as_secs_f64()),
            duration_s: s.duration.as_secs_f64(),
            attrs: s.attrs.clone(),
        })
        .collect()
}

impl Recorder for MemoryRecorder {
    fn counter_add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut state = self.lock();
        match state.counters.get_mut(name) {
            Some(current) => *current = current.saturating_add(delta),
            None => {
                state.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn observe(&self, name: &str, value: f64) {
        let mut state = self.lock();
        state.histograms.entry(name.to_string()).or_default().record(value);
    }

    fn record_span(&self, name: &str, duration: Duration) {
        let secs = duration.as_secs_f64();
        let mut state = self.lock();
        state.spans.entry(name.to_string()).or_default().record(secs);
        state.span_hists.entry(name.to_string()).or_default().record(secs);
    }

    fn warn(&self, message: &str) {
        let mut state = self.lock();
        state.warnings.push(message.to_string());
    }

    fn trace_enabled(&self) -> bool {
        true
    }

    fn record_trace_span(&self, span: FinishedSpan) {
        let root = span.parent.is_none().then_some(span.span);
        let mut state = self.lock();
        let key = span.trace.get();
        if !state.traces.contains_key(&key) {
            while state.traces.len() >= self.trace_capacity {
                match state.trace_order.pop_front() {
                    Some(oldest) => {
                        state.traces.remove(&oldest);
                        *state
                            .counters
                            .entry("telemetry.traces.dropped".to_string())
                            .or_insert(0) += 1;
                    }
                    None => break,
                }
            }
            state.trace_order.push_back(key);
        }
        let spans = state.traces.entry(key).or_default();
        if spans.len() < MAX_SPANS_PER_TRACE {
            spans.push(span);
        } else {
            *state.counters.entry("telemetry.trace_spans.dropped".to_string()).or_insert(0) += 1;
            return;
        }
        // a root finishing means its subtree is complete (spans always
        // finish child-before-parent), so feed it to the profiler now;
        // traces with several roots (a connection carrying requests)
        // profile each root's subtree as it completes
        if let (Some(root_id), Some(profiler)) = (root, &self.profiler) {
            if let Some(spans) = state.traces.get(&key) {
                if let Some(root_span) = spans.iter().rev().find(|s| s.span == root_id) {
                    profiler.observe_root(root_span, spans);
                }
            }
        }
    }

    fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_deref()
    }

    fn events_enabled(&self) -> bool {
        true
    }

    fn record_event(&self, name: &str, values: &[f64]) {
        let dropped = self.events.push(name, values);
        // counted after the event lock is released — counter_add takes
        // the state lock and the two must never nest
        if dropped > 0 {
            self.counter_add("telemetry.events.dropped", dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MemoryRecorder::new();
        r.counter_add("x", 3);
        r.counter_add("x", 4);
        r.counter_add("y", 0); // no-op, should not create the key
        assert_eq!(r.counter("x"), 7);
        assert_eq!(r.counter("y"), 0);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn histograms_summarize() {
        let r = MemoryRecorder::new();
        for v in [2.0, -1.0, 5.0] {
            r.observe("resid", v);
        }
        let h = r.histogram("resid").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 5.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert!(r.histogram("other").is_none());
    }

    #[test]
    fn spans_record_on_drop() {
        let r = MemoryRecorder::new();
        {
            let _span = r.span("work");
            std::hint::black_box(0u64);
        }
        {
            let _span = Span::enter(&r as &dyn Recorder, "work");
        }
        let s = r.span_stats("work").unwrap();
        assert_eq!(s.count, 2);
        assert!(s.sum >= 0.0);
    }

    #[test]
    fn warnings_keep_order() {
        let r = MemoryRecorder::new();
        r.warn("first");
        r.warn("second");
        assert_eq!(r.warnings(), vec!["first".to_string(), "second".to_string()]);
    }

    #[test]
    fn noop_is_callable_through_dyn() {
        let r: &dyn Recorder = &NOOP;
        r.counter_add("x", 1);
        r.observe("y", 1.0);
        r.warn("z");
        let _span = Span::enter(r, "s");
    }

    #[test]
    fn poisoned_recorder_keeps_working() {
        // regression: a worker panicking while holding the state lock
        // must not make every later counter_add/snapshot panic too
        let r = MemoryRecorder::new();
        r.counter_add("x", 1);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = r.lock();
            panic!("worker died mid-update");
        }));
        assert!(panicked.is_err());
        r.counter_add("x", 1);
        r.observe("y", 2.0);
        r.warn("still alive");
        assert_eq!(r.counter("x"), 2);
        let report = r.snapshot("after poison");
        assert_eq!(report.counters.get("x"), Some(&2));
        assert_eq!(report.warnings, vec!["still alive".to_string()]);
    }

    #[test]
    fn trace_storage_evicts_oldest_and_counts_drops() {
        let r = MemoryRecorder::with_limits(2, 4);
        let traces: Vec<TraceId> = (0..3).map(|_| next_trace_id()).collect();
        for &trace in &traces {
            let _root = TracedSpan::root(&r, "request", trace);
        }
        assert_eq!(r.counter("telemetry.traces.dropped"), 1);
        assert!(r.trace_spans(traces[0]).is_empty(), "oldest trace should be evicted");
        assert_eq!(r.trace_spans(traces[1]).len(), 1);
        assert_eq!(r.trace_spans(traces[2]).len(), 1);
        assert_eq!(r.trace_ids(), vec![traces[1], traces[2]]);
    }

    #[test]
    fn events_flow_through_the_recorder_trait() {
        let r = MemoryRecorder::with_limits(4, 2);
        let dynr: &dyn Recorder = &r;
        assert!(dynr.events_enabled());
        dynr.record_event("a", &[1.0]);
        dynr.record_event("b", &[2.0]);
        dynr.record_event("c", &[3.0]);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events_dropped(), 1);
        assert_eq!(r.counter("telemetry.events.dropped"), 1);
        // the noop recorder ignores events entirely
        assert!(!NOOP.events_enabled());
        NOOP.record_event("ignored", &[1.0]);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = MemoryRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        r.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("hits"), 400);
    }
}
