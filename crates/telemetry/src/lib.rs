//! Observability for the maxflow-ppuf solver stack: monotonic counters,
//! value histograms, lightweight wall-clock spans, and warnings, behind a
//! [`Recorder`] trait whose default implementation ([`NoopRecorder`]) costs
//! nothing.
//!
//! The crate is dependency-free. Instrumented code reports aggregates at
//! *solve granularity* — a solver counts its iterations in locals and calls
//! the recorder once per solve — so the dynamic dispatch here never sits on
//! a hot inner loop.
//!
//! # Quick tour
//!
//! ```
//! use ppuf_telemetry::{MemoryRecorder, Recorder, Span};
//!
//! let recorder = MemoryRecorder::new();
//! {
//!     let _span = Span::enter(&recorder, "demo.solve");
//!     recorder.counter_add("demo.iterations", 17);
//!     recorder.observe("demo.residual", 1.5e-9);
//! }
//! assert_eq!(recorder.counter("demo.iterations"), 17);
//! assert_eq!(recorder.span_stats("demo.solve").unwrap().count, 1);
//! ```
//!
//! For machine-readable output, [`JsonReporter`] wraps a [`MemoryRecorder`]
//! and renders a schema-versioned [`report::Report`].

pub mod report;
pub mod samples;

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use report::{JsonReporter, Report, ReportError, SCHEMA_VERSION};
pub use samples::{SampleSeries, SampleSummary};

/// Sink for instrumentation events.
///
/// All methods take `&self`; implementations are internally synchronized so
/// one recorder can be shared across solver threads.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, name: &str, delta: u64);

    /// Records one sample of the value distribution `name`.
    fn observe(&self, name: &str, value: f64);

    /// Records one timed interval for the span `name`. Usually called by
    /// [`Span`]'s drop, not directly.
    fn record_span(&self, name: &str, duration: Duration);

    /// Reports a human-readable anomaly (non-convergence, fallback taken).
    fn warn(&self, message: &str);

    /// Starts a wall-clock span ended when the guard drops.
    ///
    /// On `&dyn Recorder` use [`Span::enter`] instead; this sugar is only
    /// callable on concrete recorder types.
    fn span<'a>(&'a self, name: &'a str) -> Span<'a>
    where
        Self: Sized,
    {
        Span::enter(self, name)
    }
}

/// Recorder that discards everything. Every method is an empty inline body,
/// so instrumented code paths run at full speed when nobody is listening.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn counter_add(&self, _name: &str, _delta: u64) {}

    #[inline]
    fn observe(&self, _name: &str, _value: f64) {}

    #[inline]
    fn record_span(&self, _name: &str, _duration: Duration) {}

    #[inline]
    fn warn(&self, _message: &str) {}
}

/// The shared no-op recorder, for APIs that want a `&'static dyn Recorder`
/// default.
pub static NOOP: NoopRecorder = NoopRecorder;

/// RAII wall-clock timer; reports its lifetime to the recorder on drop.
#[must_use = "a span measures until it is dropped; binding it to _ ends it immediately"]
pub struct Span<'a> {
    recorder: &'a dyn Recorder,
    name: &'a str,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing `name` against `recorder`.
    pub fn enter(recorder: &'a dyn Recorder, name: &'a str) -> Self {
        Span { recorder, name, start: Instant::now() }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.recorder.record_span(self.name, self.start.elapsed());
    }
}

/// Count / sum / min / max summary of an observed distribution.
///
/// Enough to answer "how many, how big on average, how bad in the worst
/// case" without storing samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Arithmetic mean of the samples; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

#[derive(Debug, Default)]
struct MemoryState {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Summary>,
    spans: BTreeMap<String, Summary>,
    warnings: Vec<String>,
    samples: BTreeMap<String, SampleSeries>,
}

/// Recorder that aggregates everything in memory behind a mutex.
///
/// Spans are stored as [`Summary`] distributions of seconds. Read results
/// back with [`counter`](MemoryRecorder::counter),
/// [`histogram`](MemoryRecorder::histogram),
/// [`span_stats`](MemoryRecorder::span_stats), or snapshot the whole state
/// as a [`Report`].
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    state: Mutex<MemoryState>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a counter; 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Summary of an observed distribution, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<Summary> {
        self.lock().histograms.get(name).copied()
    }

    /// Summary (in seconds) of a span's recorded intervals.
    pub fn span_stats(&self, name: &str) -> Option<Summary> {
        self.lock().spans.get(name).copied()
    }

    /// All warnings, in the order they were raised.
    pub fn warnings(&self) -> Vec<String> {
        self.lock().warnings.clone()
    }

    /// Merges a raw sample series (e.g. per-solve latencies) into the
    /// series named `name`, so percentiles survive into the [`Report`].
    pub fn record_samples(&self, name: &str, series: &SampleSeries) {
        if series.is_empty() {
            return;
        }
        let mut state = self.lock();
        state.samples.entry(name.to_string()).or_default().merge(series);
    }

    /// Percentile summary of an accumulated sample series, if non-empty.
    pub fn sample_summary(&self, name: &str) -> Option<SampleSummary> {
        self.lock().samples.get(name).and_then(SampleSeries::summary)
    }

    /// Copies the current state into a schema-versioned [`Report`].
    pub fn snapshot(&self, label: &str) -> Report {
        let state = self.lock();
        Report {
            schema_version: SCHEMA_VERSION,
            label: label.to_string(),
            counters: state.counters.clone(),
            histograms: state.histograms.clone(),
            spans: state.spans.clone(),
            warnings: state.warnings.clone(),
            samples: state
                .samples
                .iter()
                .filter_map(|(name, series)| series.summary().map(|s| (name.clone(), s)))
                .collect(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemoryState> {
        // a poisoned lock only means another thread panicked mid-update;
        // telemetry should still be readable afterwards
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Recorder for MemoryRecorder {
    fn counter_add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut state = self.lock();
        match state.counters.get_mut(name) {
            Some(current) => *current = current.saturating_add(delta),
            None => {
                state.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn observe(&self, name: &str, value: f64) {
        let mut state = self.lock();
        state.histograms.entry(name.to_string()).or_default().record(value);
    }

    fn record_span(&self, name: &str, duration: Duration) {
        let mut state = self.lock();
        state.spans.entry(name.to_string()).or_default().record(duration.as_secs_f64());
    }

    fn warn(&self, message: &str) {
        let mut state = self.lock();
        state.warnings.push(message.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MemoryRecorder::new();
        r.counter_add("x", 3);
        r.counter_add("x", 4);
        r.counter_add("y", 0); // no-op, should not create the key
        assert_eq!(r.counter("x"), 7);
        assert_eq!(r.counter("y"), 0);
        assert_eq!(r.counter("never"), 0);
    }

    #[test]
    fn histograms_summarize() {
        let r = MemoryRecorder::new();
        for v in [2.0, -1.0, 5.0] {
            r.observe("resid", v);
        }
        let h = r.histogram("resid").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 5.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert!(r.histogram("other").is_none());
    }

    #[test]
    fn spans_record_on_drop() {
        let r = MemoryRecorder::new();
        {
            let _span = r.span("work");
            std::hint::black_box(0u64);
        }
        {
            let _span = Span::enter(&r as &dyn Recorder, "work");
        }
        let s = r.span_stats("work").unwrap();
        assert_eq!(s.count, 2);
        assert!(s.sum >= 0.0);
    }

    #[test]
    fn warnings_keep_order() {
        let r = MemoryRecorder::new();
        r.warn("first");
        r.warn("second");
        assert_eq!(r.warnings(), vec!["first".to_string(), "second".to_string()]);
    }

    #[test]
    fn noop_is_callable_through_dyn() {
        let r: &dyn Recorder = &NOOP;
        r.counter_add("x", 1);
        r.observe("y", 1.0);
        r.warn("z");
        let _span = Span::enter(r, "s");
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = MemoryRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        r.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("hits"), 400);
    }
}
