//! Always-on hierarchical profiler: aggregates span timings into
//! per-call-path nodes with **self time** (wall time minus time spent in
//! children), invocation counts, and min/max, cheap enough to leave
//! enabled in production.
//!
//! A call path is a `;`-separated chain of span names rooted at the
//! outermost span, e.g. `analog.dc.solve;stamp;device_eval`. Paths are
//! interned on first sight; afterwards [`Profiler::record_path`] looks the
//! path up by `&str` and updates fixed slots, so hot-path aggregation is
//! allocation-free after warmup. Three export shapes cover the tooling
//! that needs them:
//!
//! - [`Profiler::snapshot`] — a path→[`ProfileStats`] map that rides the
//!   `profile` section of schema-v2 [`Report`](crate::Report)s;
//! - [`Profiler::fold`] — collapsed/folded-stack text (`path self_µs`
//!   per line), directly renderable by `flamegraph.pl` /
//!   `inferno-flamegraph`;
//! - [`Profiler::top_self`] — the top-K paths by cumulative self time,
//!   exported as bounded-cardinality
//!   `ppuf_profile_self_seconds_total{path="..."}` Prometheus counters.
//!
//! Self time derives from the timing invariant nested RAII spans give by
//! construction: a parent's wall time contains the sum of its children's.
//! When clocks misbehave (a child measured longer than its parent), the
//! derived self time is clamped to zero and the event counted in
//! [`Profiler::skew_clamps`] rather than producing negative time.
//!
//! With the `profile-alloc` feature the crate additionally installs a
//! counting [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper around the
//! system allocator and [`Profiler::alloc_scope`] attributes allocations
//! made by the current thread to the innermost open scope, turning the
//! repo's allocation budgets into per-phase numbers. Without the feature
//! the same API compiles to nothing.
//!
//! ```
//! use ppuf_telemetry::profile::Profiler;
//! use std::time::Duration;
//!
//! let p = Profiler::new();
//! p.record_path("solve", Duration::from_millis(10), Duration::from_millis(2));
//! p.record_path("solve;factor", Duration::from_millis(8), Duration::from_millis(8));
//! let snap = p.snapshot();
//! assert_eq!(snap["solve"].count, 1);
//! assert!(p.fold().contains("solve;factor 8000"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::trace::{FinishedSpan, SpanId, TraceNode};

/// Separator between call-path segments, chosen to match the folded-stack
/// format consumed by `flamegraph.pl`.
pub const PATH_SEPARATOR: char = ';';

/// Default number of paths exported to Prometheus by
/// [`Profiler::top_self`] callers — bounded so path cardinality cannot
/// blow up a scrape.
pub const DEFAULT_TOP_K: usize = 20;

/// Handle to an interned call path; obtained from [`Profiler::intern`]
/// and valid for the lifetime of that profiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(u32);

/// Aggregated statistics for one call path, as exported in report
/// `profile` sections.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileStats {
    /// Number of times the path was recorded.
    pub count: u64,
    /// Total wall time across invocations, seconds.
    pub wall_s: f64,
    /// Total self time (wall minus children) across invocations, seconds.
    pub self_s: f64,
    /// Shortest single invocation, seconds (0 when never recorded).
    pub min_s: f64,
    /// Longest single invocation, seconds.
    pub max_s: f64,
    /// Heap allocations attributed to this path (`profile-alloc` only;
    /// 0 otherwise).
    pub alloc_count: u64,
    /// Heap bytes requested by those allocations.
    pub alloc_bytes: u64,
}

#[derive(Clone, Copy, Debug)]
struct PathNode {
    count: u64,
    wall: Duration,
    self_time: Duration,
    min_wall: Duration,
    max_wall: Duration,
    alloc_count: u64,
    alloc_bytes: u64,
}

impl Default for PathNode {
    fn default() -> Self {
        PathNode {
            count: 0,
            wall: Duration::ZERO,
            self_time: Duration::ZERO,
            min_wall: Duration::MAX,
            max_wall: Duration::ZERO,
            alloc_count: 0,
            alloc_bytes: 0,
        }
    }
}

#[derive(Default)]
struct ProfilerState {
    /// Path → slot index. Keyed by owned strings but looked up by `&str`,
    /// so the steady-state record path never allocates.
    index: BTreeMap<String, u32>,
    /// Slot index → path, for snapshots.
    paths: Vec<String>,
    nodes: Vec<PathNode>,
}

/// Aggregates span timings into per-call-path self-time statistics.
///
/// Internally a mutex around an interning table plus fixed accumulator
/// slots; instrumented code records at *phase granularity* (once per
/// solve / per reactor sweep), so the lock never sits on an inner loop.
#[derive(Default)]
pub struct Profiler {
    state: Mutex<ProfilerState>,
    skew_clamps: AtomicU64,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths = self.lock().paths.len();
        f.debug_struct("Profiler")
            .field("paths", &paths)
            .field("skew_clamps", &self.skew_clamps.load(Ordering::Relaxed))
            .finish()
    }
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProfilerState> {
        // same policy as MemoryRecorder: a panicking instrumented thread
        // must not take profiling down with it
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Interns `path`, returning a stable id for the allocation-free
    /// [`record`](Profiler::record) form.
    pub fn intern(&self, path: &str) -> PathId {
        let mut state = self.lock();
        if let Some(&id) = state.index.get(path) {
            return PathId(id);
        }
        let id = state.paths.len() as u32;
        state.index.insert(path.to_string(), id);
        state.paths.push(path.to_string());
        state.nodes.push(PathNode::default());
        PathId(id)
    }

    /// Records one invocation of an interned path. `self_time` greater
    /// than `wall` is clamped to `wall` and counted in
    /// [`skew_clamps`](Profiler::skew_clamps).
    pub fn record(&self, id: PathId, wall: Duration, self_time: Duration) {
        let self_time = if self_time > wall {
            self.skew_clamps.fetch_add(1, Ordering::Relaxed);
            wall
        } else {
            self_time
        };
        let mut state = self.lock();
        let Some(node) = state.nodes.get_mut(id.0 as usize) else { return };
        node.count += 1;
        node.wall += wall;
        node.self_time += self_time;
        node.min_wall = node.min_wall.min(wall);
        node.max_wall = node.max_wall.max(wall);
    }

    /// Records one invocation of `path`, interning it on first sight;
    /// allocation-free once the path is known.
    pub fn record_path(&self, path: &str, wall: Duration, self_time: Duration) {
        let self_time = if self_time > wall {
            self.skew_clamps.fetch_add(1, Ordering::Relaxed);
            wall
        } else {
            self_time
        };
        let mut state = self.lock();
        let slot = match state.index.get(path) {
            Some(&id) => id as usize,
            None => {
                let id = state.paths.len() as u32;
                state.index.insert(path.to_string(), id);
                state.paths.push(path.to_string());
                state.nodes.push(PathNode::default());
                id as usize
            }
        };
        let node = &mut state.nodes[slot];
        node.count += 1;
        node.wall += wall;
        node.self_time += self_time;
        node.min_wall = node.min_wall.min(wall);
        node.max_wall = node.max_wall.max(wall);
    }

    /// Records a leaf invocation (no children: self time equals wall).
    pub fn record_leaf(&self, path: &str, wall: Duration) {
        self.record_path(path, wall, wall);
    }

    /// Adds allocation counts to an interned path (fed by
    /// [`AllocScope`]'s drop; callable directly for externally-measured
    /// attribution).
    pub fn record_alloc(&self, id: PathId, allocs: u64, bytes: u64) {
        if allocs == 0 && bytes == 0 {
            return;
        }
        let mut state = self.lock();
        if let Some(node) = state.nodes.get_mut(id.0 as usize) {
            node.alloc_count = node.alloc_count.saturating_add(allocs);
            node.alloc_bytes = node.alloc_bytes.saturating_add(bytes);
        }
    }

    /// Opens an allocation-attribution scope for `path`: with the
    /// `profile-alloc` feature, every allocation the current thread makes
    /// until the guard drops is charged to the path; without it the guard
    /// is a no-op.
    pub fn alloc_scope<'a>(&'a self, path: &str) -> AllocScope<'a> {
        #[cfg(feature = "profile-alloc")]
        {
            let id = self.intern(path);
            let (allocs, bytes) = alloc::thread_totals();
            AllocScope { profiler: self, id, start_allocs: allocs, start_bytes: bytes }
        }
        #[cfg(not(feature = "profile-alloc"))]
        {
            let _ = path;
            AllocScope { _marker: std::marker::PhantomData }
        }
    }

    /// Walks an assembled trace tree, recording every node under its
    /// full root-to-node call path. Self time is the node's wall minus
    /// the sum of its children's wall, clamped at zero (clock skew is
    /// counted, never surfaced as negative time).
    pub fn observe_trace(&self, tree: &TraceNode) {
        let mut scratch = String::new();
        self.walk_tree(&mut scratch, tree);
    }

    fn walk_tree(&self, scratch: &mut String, node: &TraceNode) {
        let len = scratch.len();
        push_segment(scratch, &node.span.name);
        let children: Duration = node.children.iter().map(|c| c.span.duration).sum();
        let self_time = self.derive_self(node.span.duration, children);
        self.record_path(scratch, node.span.duration, self_time);
        for child in &node.children {
            self.walk_tree(scratch, child);
        }
        scratch.truncate(len);
    }

    /// Walks the subtree rooted at `root` inside a flat span list
    /// (children link to parents by id), recording each span under its
    /// call path. This is the incremental form [`MemoryRecorder`](crate::MemoryRecorder)
    /// uses when a root span finishes: spans
    /// always finish child-before-parent, so the moment a root arrives
    /// its whole subtree is already present.
    pub fn observe_root(&self, root: &FinishedSpan, spans: &[FinishedSpan]) {
        let mut scratch = String::new();
        self.walk_flat(&mut scratch, root, spans);
    }

    fn walk_flat(&self, scratch: &mut String, span: &FinishedSpan, spans: &[FinishedSpan]) {
        let len = scratch.len();
        push_segment(scratch, &span.name);
        let children: Duration = children_of(span.span, spans).map(|child| child.duration).sum();
        let self_time = self.derive_self(span.duration, children);
        self.record_path(scratch, span.duration, self_time);
        for child in children_of(span.span, spans) {
            self.walk_flat(scratch, child, spans);
        }
        scratch.truncate(len);
    }

    fn derive_self(&self, wall: Duration, children: Duration) -> Duration {
        match wall.checked_sub(children) {
            Some(self_time) => self_time,
            None => {
                self.skew_clamps.fetch_add(1, Ordering::Relaxed);
                Duration::ZERO
            }
        }
    }

    /// Times a child span's wall-time sum exceeded its parent's wall
    /// time (each such derivation clamps self time to zero instead of
    /// going negative).
    pub fn skew_clamps(&self) -> u64 {
        self.skew_clamps.load(Ordering::Relaxed)
    }

    /// Whether no path has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().nodes.iter().all(|n| n.count == 0 && n.alloc_count == 0)
    }

    /// Current statistics for every recorded path, keyed by path.
    pub fn snapshot(&self) -> BTreeMap<String, ProfileStats> {
        let state = self.lock();
        state
            .index
            .iter()
            .filter_map(|(path, &id)| {
                let node = state.nodes.get(id as usize)?;
                // alloc-only paths (scope opened, never timed) still show
                if node.count == 0 && node.alloc_count == 0 {
                    return None;
                }
                let min = if node.count == 0 { Duration::ZERO } else { node.min_wall };
                Some((
                    path.clone(),
                    ProfileStats {
                        count: node.count,
                        wall_s: node.wall.as_secs_f64(),
                        self_s: node.self_time.as_secs_f64(),
                        min_s: min.as_secs_f64(),
                        max_s: node.max_wall.as_secs_f64(),
                        alloc_count: node.alloc_count,
                        alloc_bytes: node.alloc_bytes,
                    },
                ))
            })
            .collect()
    }

    /// Renders the profile as collapsed/folded stacks — one
    /// `path self_microseconds` line per path, the input format of
    /// `flamegraph.pl` and `inferno-flamegraph`.
    pub fn fold(&self) -> String {
        let state = self.lock();
        let mut out = String::new();
        for (path, &id) in &state.index {
            let Some(node) = state.nodes.get(id as usize) else { continue };
            if node.count == 0 {
                continue;
            }
            // whitespace would split the trailing count field, so map it
            // out of the way even for directly-recorded paths
            for c in path.chars() {
                out.push(if c.is_whitespace() { '_' } else { c });
            }
            let _ = writeln!(out, " {}", node.self_time.as_micros());
        }
        out
    }

    /// The `k` paths with the largest cumulative self time, descending —
    /// the bounded-cardinality set exported to Prometheus.
    pub fn top_self(&self, k: usize) -> Vec<(String, f64)> {
        let state = self.lock();
        let mut entries: Vec<(String, f64)> = state
            .index
            .iter()
            .filter_map(|(path, &id)| {
                let node = state.nodes.get(id as usize)?;
                (node.count > 0).then(|| (path.clone(), node.self_time.as_secs_f64()))
            })
            .collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        entries.truncate(k);
        entries
    }
}

fn children_of(parent: SpanId, spans: &[FinishedSpan]) -> impl Iterator<Item = &FinishedSpan> {
    spans.iter().filter(move |s| s.parent == Some(parent))
}

/// Appends one path segment to `scratch`, separator included, with
/// characters that would corrupt the folded-stack format (`;` splits
/// frames, space splits the count) mapped to safe stand-ins.
fn push_segment(scratch: &mut String, name: &str) {
    if !scratch.is_empty() {
        scratch.push(PATH_SEPARATOR);
    }
    for c in name.chars() {
        scratch.push(match c {
            ';' => ':',
            ' ' | '\t' | '\n' | '\r' => '_',
            c => c,
        });
    }
}

/// RAII guard attributing the current thread's allocations to one path
/// (see [`Profiler::alloc_scope`]). Zero-cost without `profile-alloc`.
#[must_use = "an alloc scope attributes until it is dropped"]
pub struct AllocScope<'a> {
    #[cfg(feature = "profile-alloc")]
    profiler: &'a Profiler,
    #[cfg(feature = "profile-alloc")]
    id: PathId,
    #[cfg(feature = "profile-alloc")]
    start_allocs: u64,
    #[cfg(feature = "profile-alloc")]
    start_bytes: u64,
    #[cfg(not(feature = "profile-alloc"))]
    _marker: std::marker::PhantomData<&'a Profiler>,
}

impl Drop for AllocScope<'_> {
    fn drop(&mut self) {
        #[cfg(feature = "profile-alloc")]
        {
            let (allocs, bytes) = alloc::thread_totals();
            self.profiler.record_alloc(
                self.id,
                allocs.wrapping_sub(self.start_allocs),
                bytes.wrapping_sub(self.start_bytes),
            );
        }
    }
}

/// Counting wrapper around the system allocator, installed as the global
/// allocator when the `profile-alloc` feature is enabled. Every
/// allocation increments per-thread counters that [`AllocScope`] deltas
/// against, so allocation pressure can be attributed to the innermost
/// open profiling scope on each thread.
#[cfg(feature = "profile-alloc")]
pub mod alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        // const-initialized so reading them inside the allocator cannot
        // itself allocate
        static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
        static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// Per-thread totals since thread start: (allocations, bytes).
    pub fn thread_totals() -> (u64, u64) {
        let allocs = THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0);
        let bytes = THREAD_BYTES.try_with(Cell::get).unwrap_or(0);
        (allocs, bytes)
    }

    fn note(bytes: usize) {
        // try_with: TLS may be unavailable during thread teardown; those
        // allocations go unattributed rather than aborting
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes as u64)));
    }

    /// [`GlobalAlloc`] that counts allocation events and bytes per
    /// thread before delegating to [`System`]. Frees are deliberately
    /// not tracked: the profiler reports allocation *pressure*, not
    /// live-set size.
    pub struct CountingAllocator;

    // SAFETY: delegates every operation verbatim to `System`; the
    // counting side effect touches only thread-local counters.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            note(layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            note(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            note(new_size);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static COUNTING_ALLOCATOR: CountingAllocator = CountingAllocator;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn span(id: u64, parent: Option<u64>, name: &str, micros: u64) -> FinishedSpan {
        FinishedSpan {
            trace: crate::TraceId::from_raw(1).unwrap(),
            span: SpanId::from_raw(id).unwrap(),
            parent: parent.and_then(SpanId::from_raw),
            name: name.to_string(),
            start: Instant::now(),
            duration: Duration::from_micros(micros),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn record_aggregates_wall_self_count_min_max() {
        let p = Profiler::new();
        let id = p.intern("solve");
        p.record(id, Duration::from_millis(10), Duration::from_millis(4));
        p.record(id, Duration::from_millis(2), Duration::from_millis(1));
        let snap = p.snapshot();
        let s = &snap["solve"];
        assert_eq!(s.count, 2);
        assert!((s.wall_s - 0.012).abs() < 1e-12);
        assert!((s.self_s - 0.005).abs() < 1e-12);
        assert!((s.min_s - 0.002).abs() < 1e-12);
        assert!((s.max_s - 0.010).abs() < 1e-12);
        assert_eq!(p.skew_clamps(), 0);
        assert!(!p.is_empty());
    }

    #[test]
    fn interning_is_stable_and_empty_paths_are_omitted() {
        let p = Profiler::new();
        assert!(p.is_empty());
        let a = p.intern("a");
        let b = p.intern("b");
        assert_ne!(a, b);
        assert_eq!(p.intern("a"), a);
        // interned but never recorded → not in snapshot or fold
        assert!(p.snapshot().is_empty());
        assert!(p.fold().is_empty());
        p.record(a, Duration::from_micros(5), Duration::from_micros(5));
        assert_eq!(p.snapshot().len(), 1);
    }

    #[test]
    fn self_time_above_wall_clamps_and_counts() {
        let p = Profiler::new();
        p.record_path("x", Duration::from_millis(1), Duration::from_millis(5));
        assert_eq!(p.skew_clamps(), 1);
        let snap = p.snapshot();
        assert!((snap["x"].self_s - 0.001).abs() < 1e-12, "clamped to wall");
    }

    #[test]
    fn observe_root_derives_hierarchical_self_time() {
        let p = Profiler::new();
        // root (1000µs) -> a (600µs) -> a_leaf (100µs); root -> b (150µs)
        let spans = vec![
            span(4, Some(2), "a_leaf", 100),
            span(2, Some(1), "a", 600),
            span(3, Some(1), "b", 150),
            span(1, None, "request", 1000),
        ];
        p.observe_root(&spans[3], &spans);
        let snap = p.snapshot();
        assert_eq!(snap["request"].count, 1);
        assert!((snap["request"].self_s - 250e-6).abs() < 1e-9, "1000 - 600 - 150");
        assert!((snap["request;a"].self_s - 500e-6).abs() < 1e-9, "600 - 100");
        assert!((snap["request;a;a_leaf"].self_s - 100e-6).abs() < 1e-9);
        assert!((snap["request;b"].self_s - 150e-6).abs() < 1e-9);
        assert_eq!(p.skew_clamps(), 0);
    }

    #[test]
    fn observe_root_clamps_skewed_children_to_zero_self() {
        let p = Profiler::new();
        // child claims more time than its parent — bad clocks, not panic
        let spans = vec![span(2, Some(1), "child", 2000), span(1, None, "root", 1000)];
        p.observe_root(&spans[1], &spans);
        assert_eq!(p.skew_clamps(), 1);
        let snap = p.snapshot();
        assert_eq!(snap["root"].self_s, 0.0);
        assert!((snap["root;child"].self_s - 2000e-6).abs() < 1e-9);
    }

    #[test]
    fn fold_emits_flamegraph_compatible_lines() {
        let p = Profiler::new();
        p.record_path("root", Duration::from_micros(300), Duration::from_micros(100));
        p.record_path("root;phase one", Duration::from_micros(200), Duration::from_micros(200));
        let folded = p.fold();
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
            assert!(!stack.is_empty());
            count.parse::<u64>().expect("count is an integer");
        }
        // spaces inside a span name are mapped out of the way
        assert!(folded.contains("root;phase_one 200"), "{folded:?}");
        assert!(folded.contains("root 100"), "{folded:?}");
    }

    #[test]
    fn top_self_is_bounded_and_sorted() {
        let p = Profiler::new();
        for i in 0..10u64 {
            p.record_path(
                &format!("path{i}"),
                Duration::from_micros(100 * (i + 1)),
                Duration::from_micros(100 * (i + 1)),
            );
        }
        let top = p.top_self(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, "path9");
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn observe_trace_matches_observe_root() {
        let flat = vec![span(2, Some(1), "inner", 300), span(1, None, "outer", 900)];
        let tree = crate::trace::assemble(&flat).unwrap();
        let via_tree = Profiler::new();
        via_tree.observe_trace(&tree);
        let via_root = Profiler::new();
        via_root.observe_root(&flat[1], &flat);
        assert_eq!(via_tree.snapshot(), via_root.snapshot());
    }

    #[test]
    fn alloc_scope_is_callable_without_the_feature() {
        let p = Profiler::new();
        {
            let _scope = p.alloc_scope("solve");
            let _v: Vec<u8> = Vec::with_capacity(64);
        }
        // without profile-alloc the scope records nothing; with it the
        // path gains allocation counts (covered by tests/profile_alloc.rs)
        #[cfg(not(feature = "profile-alloc"))]
        assert!(p.snapshot().is_empty());
    }
}
