//! Bounded ring-buffer event log for low-rate structured diagnostics.
//!
//! An *event* is a named vector of numbers emitted at most a handful of
//! times per solve — a Newton residual trajectory, per-phase augmentation
//! counts from a max-flow run. Unlike counters and histograms these keep
//! their per-occurrence shape, so a non-converging solve is diagnosable
//! from its actual trajectory instead of a single `NoConvergence` warning.
//!
//! The log is a fixed-capacity ring: pushing past capacity drops the
//! *oldest* event and reports the drop, and never blocks or grows. Hot
//! paths therefore cannot be stalled or balloon memory no matter how
//! chatty a misbehaving solver gets.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// Default ring capacity used by
/// [`MemoryRecorder`](crate::MemoryRecorder).
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Position in the emission order (monotone, starts at 0, keeps
    /// counting across drops — gaps at the front reveal overflow).
    pub seq: u64,
    /// Event name (e.g. `analog.dc.residual_trace`).
    pub name: String,
    /// The event payload.
    pub values: Vec<f64>,
}

#[derive(Debug, Default)]
struct LogState {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Fixed-capacity, thread-safe, drop-oldest event ring.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    state: Mutex<LogState>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// Creates a log holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventLog { capacity: capacity.max(1), state: Mutex::new(LogState::default()) }
    }

    fn lock(&self) -> MutexGuard<'_, LogState> {
        // a panicking emitter must not take the log down with it
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an event; at capacity the oldest event is discarded.
    /// Returns the number of events dropped to make room (0 or 1).
    pub fn push(&self, name: &str, values: &[f64]) -> u64 {
        let mut state = self.lock();
        let mut dropped = 0;
        while state.events.len() >= self.capacity {
            state.events.pop_front();
            dropped += 1;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.dropped += dropped;
        state.events.push_back(Event { seq, name: name.to_string(), values: values.to_vec() });
        dropped
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Total events discarded due to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order_below_capacity() {
        let log = EventLog::new(4);
        assert!(log.is_empty());
        assert_eq!(log.push("a", &[1.0]), 0);
        assert_eq!(log.push("b", &[2.0, 3.0]), 0);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 0);
        let events = log.snapshot();
        assert_eq!(events[0], Event { seq: 0, name: "a".into(), values: vec![1.0] });
        assert_eq!(events[1], Event { seq: 1, name: "b".into(), values: vec![2.0, 3.0] });
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let log = EventLog::new(3);
        for i in 0..10u64 {
            let dropped = log.push("e", &[i as f64]);
            assert_eq!(dropped, u64::from(i >= 3));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        let seqs: Vec<u64> = log.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let log = EventLog::new(0);
        assert_eq!(log.capacity(), 1);
        log.push("a", &[]);
        log.push("b", &[]);
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].name, "b");
    }
}
