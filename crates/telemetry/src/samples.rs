//! Latency sample accumulation and percentile extraction.
//!
//! The [`Recorder`](crate::Recorder) histograms keep only running moments
//! (count/sum/min/max) — cheap, but no percentiles. Load generators and
//! service benchmarks need p50/p95/p99, so they collect raw samples in a
//! [`SampleSeries`] and summarize at the end. Samples are kept exactly
//! (one `f64` each); at load-test scales (≤ millions of requests) that is
//! a few megabytes, and exact order statistics beat sketch error bars.

/// An accumulating series of numeric samples (e.g. latencies in seconds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleSeries {
    samples: Vec<f64>,
}

/// Summary statistics of a [`SampleSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl SampleSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series with room for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        SampleSeries { samples: Vec::with_capacity(capacity) }
    }

    /// Records one sample. Non-finite values are dropped (a poisoned
    /// timing measurement must not corrupt every percentile).
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Absorbs all samples from `other`.
    pub fn merge(&mut self, other: &SampleSeries) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) by the nearest-rank method, or
    /// `None` for an empty series.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite samples are never recorded"));
        Some(nearest_rank(&sorted, q))
    }

    /// Summarizes the series, or `None` if it is empty.
    ///
    /// Sorts once and reads every percentile off the sorted copy, so it is
    /// cheaper than repeated [`quantile`](Self::quantile) calls.
    pub fn summary(&self) -> Option<SampleSummary> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite samples are never recorded"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        Some(SampleSummary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean: sum / count as f64,
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
            p99: nearest_rank(&sorted, 0.99),
        })
    }
}

// With the `serde` feature, SampleSummary embeds directly in wire-protocol
// message types. Impls are hand-written because the struct predates the
// feature and must keep compiling without it.
#[cfg(feature = "serde")]
mod serde_impls {
    use super::SampleSummary;
    use serde::{Deserialize, Error, Serialize, Value};

    impl Serialize for SampleSummary {
        fn to_value(&self) -> Value {
            Value::Map(vec![
                ("count".to_string(), (self.count as u64).to_value()),
                ("min".to_string(), self.min.to_value()),
                ("max".to_string(), self.max.to_value()),
                ("mean".to_string(), self.mean.to_value()),
                ("p50".to_string(), self.p50.to_value()),
                ("p95".to_string(), self.p95.to_value()),
                ("p99".to_string(), self.p99.to_value()),
            ])
        }
    }

    impl<'de> Deserialize<'de> for SampleSummary {
        fn from_value(value: &Value) -> Result<Self, Error> {
            let field = |key: &str| {
                value
                    .get(key)
                    .ok_or_else(|| Error::custom(format!("SampleSummary missing field {key:?}")))
            };
            Ok(SampleSummary {
                count: u64::from_value(field("count")?)? as usize,
                min: f64::from_value(field("min")?)?,
                max: f64::from_value(field("max")?)?,
                mean: f64::from_value(field("mean")?)?,
                p50: f64::from_value(field("p50")?)?,
                p95: f64::from_value(field("p95")?)?,
                p99: f64::from_value(field("p99")?)?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn summary_round_trips_through_the_value_model() {
            let mut series = crate::SampleSeries::new();
            series.extend((1..=100).map(f64::from));
            let summary = series.summary().unwrap();
            let back = SampleSummary::from_value(&summary.to_value()).unwrap();
            assert_eq!(back, summary);
        }
    }
}

impl Extend<f64> for SampleSeries {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Nearest-rank percentile on an already-sorted non-empty slice:
/// the smallest value with at least `⌈q·n⌉` samples at or below it.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_has_no_summary() {
        let series = SampleSeries::new();
        assert!(series.is_empty());
        assert_eq!(series.summary(), None);
        assert_eq!(series.quantile(0.5), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut series = SampleSeries::new();
        series.record(3.25);
        let s = series.summary().unwrap();
        assert_eq!((s.count, s.min, s.max, s.mean), (1, 3.25, 3.25, 3.25));
        assert_eq!((s.p50, s.p95, s.p99), (3.25, 3.25, 3.25));
    }

    #[test]
    fn percentiles_match_nearest_rank_on_1_to_100() {
        let mut series = SampleSeries::new();
        // shuffled insertion order must not matter
        for i in (1..=100).rev() {
            series.record(i as f64);
        }
        let s = series.summary().unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(series.quantile(0.0), Some(1.0));
        assert_eq!(series.quantile(1.0), Some(100.0));
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut series = SampleSeries::new();
        series.extend([1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(series.len(), 3);
        assert_eq!(series.summary().unwrap().max, 3.0);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = SampleSeries::new();
        a.extend((1..=50).map(f64::from));
        let mut b = SampleSeries::new();
        b.extend((51..=100).map(f64::from));
        a.merge(&b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.summary().unwrap().p95, 95.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_quantile_panics() {
        let mut series = SampleSeries::new();
        series.record(1.0);
        let _ = series.quantile(1.5);
    }
}
