//! Hierarchical trace spans: request-scoped span trees on top of the flat
//! [`Recorder`] aggregates.
//!
//! A *trace* is the set of spans produced while serving one request; every
//! span carries the request's [`TraceId`], its own [`SpanId`], an optional
//! parent span, and free-form key=value attributes. The serving stack opens
//! a root span per wire request and hangs queue-wait, cache-probe, and
//! verify child spans under it, so the latency of a single verification can
//! be attributed to its stages instead of drowning in per-name summaries.
//!
//! Everything here is gated on [`Recorder::trace_enabled`]: against a
//! recorder that reports tracing disabled (the
//! [`NoopRecorder`](crate::NoopRecorder) default), a [`TracedSpan`] never
//! allocates and never calls back into the recorder beyond the flat
//! [`record_span`](crate::Recorder::record_span) aggregate, so instrumented
//! paths stay free when nobody is listening.
//!
//! ```
//! use ppuf_telemetry::{next_trace_id, MemoryRecorder, Recorder, TracedSpan};
//!
//! let recorder = MemoryRecorder::new();
//! let trace = next_trace_id();
//! {
//!     let root = TracedSpan::root(&recorder, "request", trace);
//!     let _child = root.child("verify");
//! }
//! let tree = recorder.assemble_trace(trace).unwrap().unwrap();
//! assert_eq!(tree.span.name, "request");
//! assert_eq!(tree.children.len(), 1);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::Recorder;

/// Identifier shared by every span recorded while serving one request.
///
/// Ids are never zero, so `0` is free to mean "absent" on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw non-zero identifier.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Wraps a wire-carried identifier; `None` for the reserved value 0.
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        (raw != 0).then_some(TraceId(raw))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifier of one span within a trace (non-zero, process-unique).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw non-zero identifier.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Wraps a wire-carried identifier; `None` for the reserved value 0.
    pub fn from_raw(raw: u64) -> Option<SpanId> {
        (raw != 0).then_some(SpanId(raw))
    }
}

/// The (trace, span) pair a child span needs to attach itself under a
/// parent — e.g. carried inside a queued job to a worker thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanContext {
    /// The request's trace.
    pub trace: TraceId,
    /// The span to parent under.
    pub span: SpanId,
}

/// Monotone source for trace/span ids: an atomic counter whitened through
/// splitmix64 so concurrently-issued ids do not look sequential on the
/// wire. Deterministic given the allocation order; never produces 0.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fresh_id() -> u64 {
    let raw = splitmix64(NEXT_ID.fetch_add(1, Ordering::Relaxed));
    raw.max(1)
}

/// Allocates a fresh [`TraceId`] (lock- and allocation-free).
pub fn next_trace_id() -> TraceId {
    TraceId(fresh_id())
}

/// One completed span, as handed to
/// [`Recorder::record_trace_span`].
#[derive(Clone, Debug, PartialEq)]
pub struct FinishedSpan {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The parent span, if this is not the trace root.
    pub parent: Option<SpanId>,
    /// The span name (e.g. `server.verify`).
    pub name: String,
    /// When the span started.
    pub start: Instant,
    /// How long the span lasted.
    pub duration: Duration,
    /// Key=value attributes, in the order attached.
    pub attrs: Vec<(String, String)>,
}

/// RAII guard for one trace span.
///
/// On drop it always reports the flat `record_span` aggregate (same
/// behaviour as [`Span`](crate::Span)); when the recorder has tracing
/// enabled it additionally reports a [`FinishedSpan`] with its trace
/// lineage. Attributes attached while tracing is disabled are discarded
/// without allocating.
#[must_use = "a span measures until it is dropped; binding it to _ ends it immediately"]
pub struct TracedSpan<'a> {
    recorder: &'a dyn Recorder,
    name: &'a str,
    ctx: Option<SpanContext>,
    parent: Option<SpanId>,
    start: Instant,
    attrs: Vec<(String, String)>,
}

impl<'a> TracedSpan<'a> {
    /// Opens the root span of trace `trace`.
    pub fn root(recorder: &'a dyn Recorder, name: &'a str, trace: TraceId) -> Self {
        let ctx = recorder.trace_enabled().then(|| SpanContext { trace, span: SpanId(fresh_id()) });
        TracedSpan { recorder, name, ctx, parent: None, start: Instant::now(), attrs: Vec::new() }
    }

    /// Opens a child span of `self` against the same recorder.
    pub fn child(&self, name: &'a str) -> TracedSpan<'a> {
        TracedSpan {
            recorder: self.recorder,
            name,
            ctx: self
                .ctx
                .map(|parent| SpanContext { trace: parent.trace, span: SpanId(fresh_id()) }),
            parent: self.ctx.map(|parent| parent.span),
            start: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// Opens a child span under an explicitly-carried parent context —
    /// the cross-thread form of [`child`](Self::child) (e.g. a worker
    /// continuing a trace started on a connection thread). A `None`
    /// parent records only the flat aggregate.
    pub fn child_of(
        recorder: &'a dyn Recorder,
        name: &'a str,
        parent: Option<SpanContext>,
    ) -> TracedSpan<'a> {
        let parent = parent.filter(|_| recorder.trace_enabled());
        TracedSpan {
            recorder,
            name,
            ctx: parent.map(|p| SpanContext { trace: p.trace, span: SpanId(fresh_id()) }),
            parent: parent.map(|p| p.span),
            start: Instant::now(),
            attrs: Vec::new(),
        }
    }

    /// This span's context, for parenting work handed to another thread.
    /// `None` when the recorder has tracing disabled.
    pub fn context(&self) -> Option<SpanContext> {
        self.ctx
    }

    /// Attaches a key=value attribute. Free (no formatting, no
    /// allocation) when tracing is disabled.
    pub fn attr(&mut self, key: &str, value: impl fmt::Display) {
        if self.ctx.is_some() {
            self.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for TracedSpan<'_> {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        self.recorder.record_span(self.name, duration);
        if let Some(ctx) = self.ctx {
            self.recorder.record_trace_span(FinishedSpan {
                trace: ctx.trace,
                span: ctx.span,
                parent: self.parent,
                name: self.name.to_string(),
                start: self.start,
                duration,
                attrs: std::mem::take(&mut self.attrs),
            });
        }
    }
}

/// Records an already-elapsed interval as a span under `parent` — for
/// durations measured with explicit timestamps rather than a live guard
/// (e.g. queue wait: enqueue happens on one thread, dequeue on another).
///
/// The flat `record_span` aggregate is always reported; the trace span
/// only when the recorder has tracing enabled and a parent is supplied.
pub fn record_interval(
    recorder: &dyn Recorder,
    parent: Option<SpanContext>,
    name: &str,
    start: Instant,
    end: Instant,
) {
    let duration = end.saturating_duration_since(start);
    recorder.record_span(name, duration);
    if let Some(parent) = parent.filter(|_| recorder.trace_enabled()) {
        recorder.record_trace_span(FinishedSpan {
            trace: parent.trace,
            span: SpanId(fresh_id()),
            parent: Some(parent.span),
            name: name.to_string(),
            start,
            duration,
            attrs: Vec::new(),
        });
    }
}

/// Records an already-elapsed interval as the **root** span of `trace` —
/// for long-lived resources whose lifetime is measured with explicit
/// timestamps rather than a live RAII guard (e.g. a network connection
/// closed by an event loop long after it was opened). The requests the
/// resource carried, having run as roots of the same trace, assemble
/// into the same trace tree.
///
/// The flat `record_span` aggregate is always reported; the trace span
/// only when the recorder has tracing enabled.
pub fn record_root_interval(
    recorder: &dyn Recorder,
    trace: TraceId,
    name: &str,
    start: Instant,
    end: Instant,
    attrs: Vec<(String, String)>,
) {
    let duration = end.saturating_duration_since(start);
    recorder.record_span(name, duration);
    if recorder.trace_enabled() {
        recorder.record_trace_span(FinishedSpan {
            trace,
            span: SpanId(fresh_id()),
            parent: None,
            name: name.to_string(),
            start,
            duration,
            attrs,
        });
    }
}

/// One node of an assembled trace tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceNode {
    /// The span at this node.
    pub span: FinishedSpan,
    /// Spans that named this one as their parent, in recording order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Whether any span in the tree has this exact name.
    pub fn contains(&self, name: &str) -> bool {
        self.span.name == name || self.children.iter().any(|c| c.contains(name))
    }

    /// Total spans in the tree.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(TraceNode::span_count).sum::<usize>()
    }

    /// Whether every child's duration fits inside its parent's
    /// (recursively) — the containment invariant nested RAII spans
    /// guarantee by construction.
    pub fn durations_contained(&self) -> bool {
        self.children
            .iter()
            .all(|c| c.span.duration <= self.span.duration && c.durations_contained())
    }
}

/// Why a span set did not assemble into a single rooted tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// No spans were recorded.
    Empty,
    /// No span without a parent.
    NoRoot,
    /// More than one parentless span.
    MultipleRoots(usize),
    /// A span (by name) referenced a parent id that was never recorded.
    OrphanSpan(String),
    /// Two spans shared one id.
    DuplicateSpanId,
    /// Spans from more than one trace were mixed together.
    MixedTraces,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "no spans to assemble"),
            TraceError::NoRoot => write!(f, "no root span (every span has a parent)"),
            TraceError::MultipleRoots(n) => write!(f, "{n} parentless spans (expected 1)"),
            TraceError::OrphanSpan(name) => {
                write!(f, "span {name:?} references a parent that was never recorded")
            }
            TraceError::DuplicateSpanId => write!(f, "two spans share one span id"),
            TraceError::MixedTraces => write!(f, "spans from different traces mixed together"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Reassembles recorded spans into the single rooted tree of their trace.
///
/// # Errors
///
/// Returns a [`TraceError`] when the spans do not form exactly one tree:
/// empty input, zero or multiple roots, an orphaned parent reference,
/// duplicate span ids, or spans from different traces.
pub fn assemble(spans: &[FinishedSpan]) -> Result<TraceNode, TraceError> {
    if spans.is_empty() {
        return Err(TraceError::Empty);
    }
    let trace = spans[0].trace;
    if spans.iter().any(|s| s.trace != trace) {
        return Err(TraceError::MixedTraces);
    }
    let mut ids: Vec<SpanId> = spans.iter().map(|s| s.span).collect();
    ids.sort_unstable();
    if ids.windows(2).any(|w| w[0] == w[1]) {
        return Err(TraceError::DuplicateSpanId);
    }
    let roots = spans.iter().filter(|s| s.parent.is_none()).count();
    match roots {
        0 => return Err(TraceError::NoRoot),
        1 => {}
        n => return Err(TraceError::MultipleRoots(n)),
    }
    for span in spans {
        if let Some(parent) = span.parent {
            if ids.binary_search(&parent).is_err() {
                return Err(TraceError::OrphanSpan(span.name.clone()));
            }
        }
    }
    let root = spans.iter().find(|s| s.parent.is_none()).expect("counted above");
    Ok(build_node(root, spans))
}

fn build_node(span: &FinishedSpan, spans: &[FinishedSpan]) -> TraceNode {
    let children = spans
        .iter()
        .filter(|s| s.parent == Some(span.span))
        .map(|s| build_node(s, spans))
        .collect();
    TraceNode { span: span.clone(), children }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryRecorder, NoopRecorder};

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert_ne!(id.get(), 0);
            assert!(seen.insert(id.get()), "duplicate trace id {id}");
        }
        assert_eq!(TraceId::from_raw(0), None);
        assert_eq!(TraceId::from_raw(7).map(TraceId::get), Some(7));
    }

    #[test]
    fn nested_spans_assemble_into_one_tree() {
        let recorder = MemoryRecorder::new();
        let trace = next_trace_id();
        {
            let mut root = TracedSpan::root(&recorder, "request", trace);
            root.attr("kind", "SubmitAnswer");
            {
                let verify = root.child("verify");
                let _probe = verify.child("cache_probe");
            }
            let _other = root.child("respond");
        }
        let spans = recorder.trace_spans(trace);
        let tree = assemble(&spans).expect("spans form one tree");
        assert_eq!(tree.span.name, "request");
        assert_eq!(tree.span.attrs, vec![("kind".to_string(), "SubmitAnswer".to_string())]);
        assert_eq!(tree.span_count(), 4);
        assert!(tree.contains("cache_probe"));
        assert!(tree.durations_contained());
    }

    #[test]
    fn cross_thread_child_and_interval_attach_to_the_root() {
        let recorder = MemoryRecorder::new();
        let trace = next_trace_id();
        let t0 = Instant::now();
        {
            let root = TracedSpan::root(&recorder, "request", trace);
            let ctx = root.context();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    record_interval(&recorder, ctx, "queue_wait", t0, Instant::now());
                    let _worker = TracedSpan::child_of(&recorder, "verify", ctx);
                });
            });
        }
        let tree = assemble(&recorder.trace_spans(trace)).unwrap();
        assert!(tree.contains("queue_wait"));
        assert!(tree.contains("verify"));
        assert_eq!(tree.children.len(), 2);
    }

    #[test]
    fn disabled_recorder_produces_no_trace_spans_but_flat_aggregates() {
        let noop = NoopRecorder;
        let trace = next_trace_id();
        let mut root = TracedSpan::root(&noop, "request", trace);
        root.attr("ignored", 1);
        assert_eq!(root.context(), None);
        let child = root.child("verify");
        assert_eq!(child.context(), None);
        drop(child);
        drop(root);

        // a memory recorder still gets the flat span summaries from the
        // same call shape
        let recorder = MemoryRecorder::new();
        {
            let root = TracedSpan::root(&recorder, "request", next_trace_id());
            let _child = root.child("verify");
        }
        assert_eq!(recorder.span_stats("request").unwrap().count, 1);
        assert_eq!(recorder.span_stats("verify").unwrap().count, 1);
    }

    #[test]
    fn assembly_rejects_malformed_span_sets() {
        assert_eq!(assemble(&[]), Err(TraceError::Empty));
        let trace = next_trace_id();
        let span = |id: u64, parent: Option<u64>| FinishedSpan {
            trace,
            span: SpanId(id),
            parent: parent.map(SpanId),
            name: format!("s{id}"),
            start: Instant::now(),
            duration: Duration::ZERO,
            attrs: Vec::new(),
        };
        assert_eq!(assemble(&[span(1, Some(1))]), Err(TraceError::NoRoot));
        assert_eq!(assemble(&[span(1, None), span(2, None)]), Err(TraceError::MultipleRoots(2)));
        assert_eq!(
            assemble(&[span(1, None), span(2, Some(99))]),
            Err(TraceError::OrphanSpan("s2".into()))
        );
        assert_eq!(assemble(&[span(1, None), span(1, Some(1))]), Err(TraceError::DuplicateSpanId));
        let mut foreign = span(2, Some(1));
        foreign.trace = TraceId(trace.get().wrapping_add(1).max(1));
        assert_eq!(assemble(&[span(1, None), foreign]), Err(TraceError::MixedTraces));
    }
}
