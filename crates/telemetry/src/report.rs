//! Schema-versioned JSON run reports.
//!
//! A [`Report`] is a snapshot of a [`MemoryRecorder`]
//! that renders to and parses from JSON without external dependencies, so
//! downstream tooling (and the `telemetry_report` binary in `ppuf-bench`)
//! can diff runs across commits.
//!
//! Schema, version 2 — unknown keys are ignored on parse so the version
//! only bumps on incompatible changes, and parsers accept every version
//! back to [`MIN_SCHEMA_VERSION`]:
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "label": "free text identifying the run",
//!   "counters":   { "dc.newton_iterations": 42 },
//!   "histograms": { "dc.final_residual": {"count":1,"sum":1e-10,"min":1e-10,"max":1e-10} },
//!   "spans":      { "dc.solve": {"count":1,"sum":0.0031,"min":0.0031,"max":0.0031} },
//!   "warnings":   [ "..." ],
//!   "samples":    { "engine.solve_seconds": {"count":3,"min":0.001,"max":0.003,"mean":0.002,"p50":0.002,"p95":0.003,"p99":0.003} },
//!   "hists":      { "dc.solve": {"count":1,"sum":0.0031,"min":0.0031,"max":0.0031,"buckets":[{"le":0.0031113,"count":1}]} },
//!   "profile":    { "analog.dc.solve;stamp": {"count":1,"wall_s":0.002,"self_s":0.0005,"min_s":0.002,"max_s":0.002,"alloc_count":0,"alloc_bytes":0} },
//!   "events":     [ {"seq":0,"name":"analog.dc.residual_trace","values":[1e-3,1e-7,1e-12]} ],
//!   "traces":     { "00c0ffee00c0ffee": [ {"span":"0000000000000001","parent":null,"name":"server.request","start_s":0.0,"duration_s":0.002,"attrs":{"kind":"SubmitAnswer"}} ] }
//! }
//! ```
//!
//! The `samples` section carries percentile summaries of raw
//! [`SampleSeries`] data, and `hists` carries sparse
//! [`HistogramSnapshot`]s of the bounded log-bucketed histograms (bucket
//! counts are non-cumulative; edges follow the compile-time scheme in
//! [`crate::hist`]). `events` is the drained
//! diagnostic ring buffer ([`crate::EventLog`]) and `traces` the retained
//! span trees, keyed by zero-padded hex trace id with span ids as hex
//! strings (full-range `u64` ids do not survive JSON's `f64` numbers) and
//! per-trace timestamps rebased to the earliest span. The `profile`
//! section carries hierarchical profiler statistics keyed by
//! `;`-separated call path ([`crate::profile`]) and is written only when
//! non-empty. All of these sections are optional on parse: v1 reports —
//! written before `events`/`traces` existed — and v2 reports written
//! before `hists`/`profile` still load, which is why these are
//! compatible additions rather than version bumps.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use crate::hist::{HistBucket, HistogramSnapshot};
use crate::profile::ProfileStats;
use crate::{MemoryRecorder, Recorder, SampleSeries, SampleSummary, Summary};

/// Version written into every report; parsers accept
/// [`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`] and reject the rest.
pub const SCHEMA_VERSION: u32 = 2;

/// Oldest report schema still parseable (v1 lacked `events`/`traces`).
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// One diagnostic event from the bounded ring buffer
/// ([`crate::EventLog`]).
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Position in the emission order (gaps at the front reveal drops).
    pub seq: u64,
    /// Event name.
    pub name: String,
    /// Event payload.
    pub values: Vec<f64>,
}

/// One span of a retained trace, timestamps rebased to the trace's
/// earliest span start.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpanRecord {
    /// Span id, unique within the trace.
    pub span: u64,
    /// Parent span id; `None` for the trace root.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Seconds from the trace's first span start to this span's start.
    pub start_s: f64,
    /// Span duration in seconds.
    pub duration_s: f64,
    /// Key=value attributes, in the order attached.
    pub attrs: Vec<(String, String)>,
}

/// Snapshot of one instrumented run.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Always [`SCHEMA_VERSION`] for reports produced by this crate.
    pub schema_version: u32,
    /// Free-text run identifier chosen by the producer.
    pub label: String,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Observed value distributions by name.
    pub histograms: BTreeMap<String, Summary>,
    /// Span timings by name, in seconds.
    pub spans: BTreeMap<String, Summary>,
    /// Warnings in the order raised.
    pub warnings: Vec<String>,
    /// Percentile summaries of raw sample series by name.
    pub samples: BTreeMap<String, SampleSummary>,
    /// Bounded log-bucketed histogram snapshots by name — one per span
    /// name for recorder snapshots (empty for reports written before the
    /// section existed; optional on parse like `samples`).
    pub hists: BTreeMap<String, HistogramSnapshot>,
    /// Hierarchical profiler statistics keyed by `;`-separated call path
    /// (see [`crate::profile`]). Written only when non-empty and
    /// optional on parse, so reports from recorders without an attached
    /// profiler are byte-identical to pre-profiler reports.
    pub profile: BTreeMap<String, ProfileStats>,
    /// Retained diagnostic events, oldest first (empty for v1 reports).
    pub events: Vec<EventRecord>,
    /// Retained trace span sets keyed by zero-padded hex trace id
    /// (empty for v1 reports).
    pub traces: BTreeMap<String, Vec<TraceSpanRecord>>,
}

/// Failure parsing a report from JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportError(String);

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "telemetry report error: {}", self.0)
    }
}

impl std::error::Error for ReportError {}

impl Report {
    /// Renders the report as indented JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"label\": {},", json_string(&self.label));
        write_u64_map(&mut out, "counters", &self.counters);
        out.push_str(",\n");
        write_summary_map(&mut out, "histograms", &self.histograms);
        out.push_str(",\n");
        write_summary_map(&mut out, "spans", &self.spans);
        out.push_str(",\n  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(w));
        }
        out.push_str("],\n");
        write_sample_map(&mut out, "samples", &self.samples);
        out.push_str(",\n");
        write_hist_map(&mut out, "hists", &self.hists);
        if !self.profile.is_empty() {
            out.push_str(",\n");
            write_profile_map(&mut out, "profile", &self.profile);
        }
        out.push_str(",\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"seq\": {}, \"name\": {}, \"values\": [",
                e.seq,
                json_string(&e.name)
            );
            for (j, v) in e.values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_f64(*v));
            }
            out.push_str("]}");
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"traces\": {");
        for (i, (trace, spans)) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: [", json_string(trace));
            for (j, s) in spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"span\": \"{:016x}\", \"parent\": {}, \"name\": {}, \"start_s\": {}, \"duration_s\": {}, \"attrs\": {{",
                    s.span,
                    match s.parent {
                        Some(p) => format!("\"{p:016x}\""),
                        None => "null".to_string(),
                    },
                    json_string(&s.name),
                    json_f64(s.start_s),
                    json_f64(s.duration_s),
                );
                for (k, (key, value)) in s.attrs.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {}", json_string(key), json_string(value));
                }
                out.push_str("}}");
            }
            if !spans.is_empty() {
                out.push_str("\n    ");
            }
            out.push(']');
        }
        if !self.traces.is_empty() {
            out.push_str("\n  ");
        }
        out.push('}');
        out.push_str("\n}\n");
        out
    }

    /// Parses a report produced by [`Report::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ReportError`] on malformed JSON, a missing field, or a
    /// schema version other than [`SCHEMA_VERSION`].
    pub fn from_json(text: &str) -> Result<Report, ReportError> {
        let value = json::parse(text).map_err(ReportError)?;
        let map = value.as_map().ok_or_else(|| ReportError("top level is not an object".into()))?;
        let schema_version = get(map, "schema_version")?
            .as_u64()
            .ok_or_else(|| ReportError("schema_version is not an integer".into()))?
            as u32;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema_version) {
            return Err(ReportError(format!(
                "unsupported schema_version {schema_version} \
                 (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            )));
        }
        let label = get(map, "label")?
            .as_str()
            .ok_or_else(|| ReportError("label is not a string".into()))?
            .to_string();
        let counters = get(map, "counters")?
            .as_map()
            .ok_or_else(|| ReportError("counters is not an object".into()))?
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| ReportError(format!("counter {k:?} is not an integer")))
            })
            .collect::<Result<_, _>>()?;
        let histograms = parse_summary_map(get(map, "histograms")?, "histograms")?;
        let spans = parse_summary_map(get(map, "spans")?, "spans")?;
        let warnings = get(map, "warnings")?
            .as_seq()
            .ok_or_else(|| ReportError("warnings is not an array".into()))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ReportError("warning is not a string".into()))
            })
            .collect::<Result<_, _>>()?;
        // optional sections: `samples` predates its own introduction and
        // `events`/`traces` arrived with schema v2, so v1 reports parse
        // with the corresponding sections empty
        let samples = match map.iter().find(|(k, _)| k == "samples") {
            Some((_, v)) => parse_sample_map(v)?,
            None => BTreeMap::new(),
        };
        let hists = match map.iter().find(|(k, _)| k == "hists") {
            Some((_, v)) => parse_hist_map(v)?,
            None => BTreeMap::new(),
        };
        let profile = match map.iter().find(|(k, _)| k == "profile") {
            Some((_, v)) => parse_profile_map(v)?,
            None => BTreeMap::new(),
        };
        let events = match map.iter().find(|(k, _)| k == "events") {
            Some((_, v)) => parse_events(v)?,
            None => Vec::new(),
        };
        let traces = match map.iter().find(|(k, _)| k == "traces") {
            Some((_, v)) => parse_traces(v)?,
            None => BTreeMap::new(),
        };
        Ok(Report {
            schema_version,
            label,
            counters,
            histograms,
            spans,
            warnings,
            samples,
            hists,
            profile,
            events,
            traces,
        })
    }

    /// Signed per-counter difference `self - baseline`, for diffing two
    /// runs; counters absent on one side count as zero.
    pub fn counter_delta(&self, baseline: &Report) -> BTreeMap<String, i128> {
        let mut delta = BTreeMap::new();
        for (name, value) in &self.counters {
            let base = baseline.counters.get(name).copied().unwrap_or(0);
            let diff = i128::from(*value) - i128::from(base);
            if diff != 0 {
                delta.insert(name.clone(), diff);
            }
        }
        for (name, base) in &baseline.counters {
            if !self.counters.contains_key(name) {
                delta.insert(name.clone(), -i128::from(*base));
            }
        }
        delta
    }
}

fn get<'a>(map: &'a [(String, json::Value)], key: &str) -> Result<&'a json::Value, ReportError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ReportError(format!("missing field {key:?}")))
}

fn parse_summary_map(
    value: &json::Value,
    what: &str,
) -> Result<BTreeMap<String, Summary>, ReportError> {
    let entries = value.as_map().ok_or_else(|| ReportError(format!("{what} is not an object")))?;
    entries
        .iter()
        .map(|(name, v)| {
            let fields = v
                .as_map()
                .ok_or_else(|| ReportError(format!("{what} entry {name:?} is not an object")))?;
            let number = |key: &str| {
                get(fields, key)?
                    .as_f64()
                    .ok_or_else(|| ReportError(format!("{what}.{name}.{key} is not a number")))
            };
            let count = get(fields, "count")?
                .as_u64()
                .ok_or_else(|| ReportError(format!("{what}.{name}.count is not an integer")))?;
            Ok((
                name.clone(),
                Summary { count, sum: number("sum")?, min: number("min")?, max: number("max")? },
            ))
        })
        .collect()
}

fn parse_sample_map(value: &json::Value) -> Result<BTreeMap<String, SampleSummary>, ReportError> {
    let entries = value.as_map().ok_or_else(|| ReportError("samples is not an object".into()))?;
    entries
        .iter()
        .map(|(name, v)| {
            let fields = v
                .as_map()
                .ok_or_else(|| ReportError(format!("samples entry {name:?} is not an object")))?;
            let number = |key: &str| {
                get(fields, key)?
                    .as_f64()
                    .ok_or_else(|| ReportError(format!("samples.{name}.{key} is not a number")))
            };
            let count = get(fields, "count")?
                .as_u64()
                .ok_or_else(|| ReportError(format!("samples.{name}.count is not an integer")))?
                as usize;
            Ok((
                name.clone(),
                SampleSummary {
                    count,
                    min: number("min")?,
                    max: number("max")?,
                    mean: number("mean")?,
                    p50: number("p50")?,
                    p95: number("p95")?,
                    p99: number("p99")?,
                },
            ))
        })
        .collect()
}

fn parse_hist_map(value: &json::Value) -> Result<BTreeMap<String, HistogramSnapshot>, ReportError> {
    let entries = value.as_map().ok_or_else(|| ReportError("hists is not an object".into()))?;
    entries
        .iter()
        .map(|(name, v)| {
            let fields = v
                .as_map()
                .ok_or_else(|| ReportError(format!("hists entry {name:?} is not an object")))?;
            let number = |key: &str| {
                get(fields, key)?
                    .as_f64()
                    .ok_or_else(|| ReportError(format!("hists.{name}.{key} is not a number")))
            };
            let count = get(fields, "count")?
                .as_u64()
                .ok_or_else(|| ReportError(format!("hists.{name}.count is not an integer")))?;
            let buckets = get(fields, "buckets")?
                .as_seq()
                .ok_or_else(|| ReportError(format!("hists.{name}.buckets is not an array")))?
                .iter()
                .map(|b| {
                    let bucket = b
                        .as_map()
                        .ok_or_else(|| ReportError("hist bucket is not an object".into()))?;
                    let le = get(bucket, "le")?
                        .as_f64()
                        .ok_or_else(|| ReportError("hist bucket le is not a number".into()))?;
                    let count = get(bucket, "count")?
                        .as_u64()
                        .ok_or_else(|| ReportError("hist bucket count is not an integer".into()))?;
                    Ok(HistBucket { le, count })
                })
                .collect::<Result<_, _>>()?;
            Ok((
                name.clone(),
                HistogramSnapshot {
                    buckets,
                    count,
                    sum: number("sum")?,
                    min: number("min")?,
                    max: number("max")?,
                },
            ))
        })
        .collect()
}

fn parse_events(value: &json::Value) -> Result<Vec<EventRecord>, ReportError> {
    let items = value.as_seq().ok_or_else(|| ReportError("events is not an array".into()))?;
    items
        .iter()
        .map(|item| {
            let fields =
                item.as_map().ok_or_else(|| ReportError("event is not an object".into()))?;
            let seq = get(fields, "seq")?
                .as_u64()
                .ok_or_else(|| ReportError("event.seq is not an integer".into()))?;
            let name = get(fields, "name")?
                .as_str()
                .ok_or_else(|| ReportError("event.name is not a string".into()))?
                .to_string();
            let values = get(fields, "values")?
                .as_seq()
                .ok_or_else(|| ReportError("event.values is not an array".into()))?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| ReportError("event value is not a number".into()))
                })
                .collect::<Result<_, _>>()?;
            Ok(EventRecord { seq, name, values })
        })
        .collect()
}

fn parse_hex_id(value: &json::Value, what: &str) -> Result<u64, ReportError> {
    let text = value.as_str().ok_or_else(|| ReportError(format!("{what} is not a hex string")))?;
    u64::from_str_radix(text, 16).map_err(|_| ReportError(format!("{what} is not a hex id")))
}

fn parse_traces(
    value: &json::Value,
) -> Result<BTreeMap<String, Vec<TraceSpanRecord>>, ReportError> {
    let entries = value.as_map().ok_or_else(|| ReportError("traces is not an object".into()))?;
    entries
        .iter()
        .map(|(trace, spans)| {
            let spans = spans
                .as_seq()
                .ok_or_else(|| ReportError(format!("trace {trace:?} is not an array")))?
                .iter()
                .map(|item| {
                    let fields = item
                        .as_map()
                        .ok_or_else(|| ReportError("trace span is not an object".into()))?;
                    let number = |key: &str| {
                        get(fields, key)?
                            .as_f64()
                            .ok_or_else(|| ReportError(format!("trace span {key} is not a number")))
                    };
                    let parent = match get(fields, "parent")? {
                        json::Value::Null => None,
                        other => Some(parse_hex_id(other, "trace span parent")?),
                    };
                    Ok(TraceSpanRecord {
                        span: parse_hex_id(get(fields, "span")?, "trace span id")?,
                        parent,
                        name: get(fields, "name")?
                            .as_str()
                            .ok_or_else(|| ReportError("trace span name is not a string".into()))?
                            .to_string(),
                        start_s: number("start_s")?,
                        duration_s: number("duration_s")?,
                        attrs: get(fields, "attrs")?
                            .as_map()
                            .ok_or_else(|| ReportError("trace span attrs is not an object".into()))?
                            .iter()
                            .map(|(k, v)| {
                                v.as_str().map(|s| (k.clone(), s.to_string())).ok_or_else(|| {
                                    ReportError("trace span attr is not a string".into())
                                })
                            })
                            .collect::<Result<_, _>>()?,
                    })
                })
                .collect::<Result<_, _>>()?;
            Ok((trace.clone(), spans))
        })
        .collect()
}

fn write_u64_map(out: &mut String, key: &str, map: &BTreeMap<String, u64>) {
    let _ = write!(out, "  \"{key}\": {{");
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {value}", json_string(name));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

fn write_summary_map(out: &mut String, key: &str, map: &BTreeMap<String, Summary>) {
    let _ = write!(out, "  \"{key}\": {{");
    for (i, (name, s)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
            json_string(name),
            s.count,
            json_f64(s.sum),
            json_f64(s.min),
            json_f64(s.max),
        );
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

fn write_sample_map(out: &mut String, key: &str, map: &BTreeMap<String, SampleSummary>) {
    let _ = write!(out, "  \"{key}\": {{");
    for (i, (name, s)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            json_string(name),
            s.count,
            json_f64(s.min),
            json_f64(s.max),
            json_f64(s.mean),
            json_f64(s.p50),
            json_f64(s.p95),
            json_f64(s.p99),
        );
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

fn write_profile_map(out: &mut String, key: &str, map: &BTreeMap<String, ProfileStats>) {
    let _ = write!(out, "  \"{key}\": ");
    write_profile_object(out, map);
}

/// Renders a profile snapshot as a standalone JSON object
/// (`{"<path>": {"count": …, "wall_s": …, …}}`), entry-for-entry identical
/// to the report's `profile` section — the body of a wire
/// `Profile {format: Json}` admin response.
pub fn profile_to_json(map: &BTreeMap<String, ProfileStats>) -> String {
    let mut out = String::new();
    write_profile_object(&mut out, map);
    out
}

fn write_profile_object(out: &mut String, map: &BTreeMap<String, ProfileStats>) {
    out.push('{');
    for (i, (path, p)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"wall_s\": {}, \"self_s\": {}, \"min_s\": {}, \"max_s\": {}, \"alloc_count\": {}, \"alloc_bytes\": {}}}",
            json_string(path),
            p.count,
            json_f64(p.wall_s),
            json_f64(p.self_s),
            json_f64(p.min_s),
            json_f64(p.max_s),
            p.alloc_count,
            p.alloc_bytes,
        );
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

fn parse_profile_map(value: &json::Value) -> Result<BTreeMap<String, ProfileStats>, ReportError> {
    let entries = value.as_map().ok_or_else(|| ReportError("profile is not an object".into()))?;
    entries
        .iter()
        .map(|(path, v)| {
            let fields = v
                .as_map()
                .ok_or_else(|| ReportError(format!("profile entry {path:?} is not an object")))?;
            let number = |key: &str| {
                get(fields, key)?
                    .as_f64()
                    .ok_or_else(|| ReportError(format!("profile.{path}.{key} is not a number")))
            };
            let integer = |key: &str| {
                get(fields, key)?
                    .as_u64()
                    .ok_or_else(|| ReportError(format!("profile.{path}.{key} is not an integer")))
            };
            Ok((
                path.clone(),
                ProfileStats {
                    count: integer("count")?,
                    wall_s: number("wall_s")?,
                    self_s: number("self_s")?,
                    min_s: number("min_s")?,
                    max_s: number("max_s")?,
                    alloc_count: integer("alloc_count")?,
                    alloc_bytes: integer("alloc_bytes")?,
                },
            ))
        })
        .collect()
}

fn write_hist_map(out: &mut String, key: &str, map: &BTreeMap<String, HistogramSnapshot>) {
    let _ = write!(out, "  \"{key}\": {{");
    for (i, (name, h)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
            json_string(name),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
        );
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"le\": {}, \"count\": {}}}", json_f64(b.le), b.count);
        }
        out.push_str("]}");
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}") // shortest form that round-trips
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recorder that aggregates in memory and finishes by writing a JSON
/// [`Report`] — the producer side of `results/telemetry/*.json`.
pub struct JsonReporter {
    label: String,
    recorder: MemoryRecorder,
}

impl JsonReporter {
    /// Creates a reporter whose report will carry `label`.
    pub fn new(label: impl Into<String>) -> Self {
        JsonReporter { label: label.into(), recorder: MemoryRecorder::new() }
    }

    /// The aggregating recorder, e.g. to read counters back mid-run.
    pub fn recorder(&self) -> &MemoryRecorder {
        &self.recorder
    }

    /// Merges a raw [`SampleSeries`] into the report's `samples` section,
    /// where its percentile summary will appear under `name`.
    pub fn record_samples(&self, name: &str, series: &SampleSeries) {
        self.recorder.record_samples(name, series);
    }

    /// Snapshots the current state as a [`Report`].
    pub fn report(&self) -> Report {
        self.recorder.snapshot(&self.label)
    }

    /// Writes the report as JSON to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.report().to_json())
    }
}

impl Recorder for JsonReporter {
    fn counter_add(&self, name: &str, delta: u64) {
        self.recorder.counter_add(name, delta);
    }

    fn observe(&self, name: &str, value: f64) {
        self.recorder.observe(name, value);
    }

    fn record_span(&self, name: &str, duration: Duration) {
        self.recorder.record_span(name, duration);
    }

    fn warn(&self, message: &str) {
        self.recorder.warn(message);
    }

    fn trace_enabled(&self) -> bool {
        self.recorder.trace_enabled()
    }

    fn record_trace_span(&self, span: crate::FinishedSpan) {
        self.recorder.record_trace_span(span);
    }

    fn events_enabled(&self) -> bool {
        self.recorder.events_enabled()
    }

    fn record_event(&self, name: &str, values: &[f64]) {
        self.recorder.record_event(name, values);
    }

    fn profiler(&self) -> Option<&crate::Profiler> {
        self.recorder.profiler()
    }
}

/// Minimal JSON reader used only by [`Report::from_json`]; kept private so
/// the crate stays dependency-free.
mod json {
    pub enum Value {
        Null,
        Bool(#[allow(dead_code)] bool),
        Num(f64),
        Str(String),
        Seq(Vec<Value>),
        Map(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(entries) => Some(entries),
                _ => None,
            }
        }

        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                Value::Null => Some(f64::NAN), // non-finite stats serialize as null
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, byte: u8) -> Result<(), String> {
            if self.bytes.get(self.pos) == Some(&byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", byte as char, self.pos))
            }
        }

        fn literal(&mut self, text: &str) -> bool {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.bytes.get(self.pos) {
                Some(b'n') if self.literal("null") => Ok(Value::Null),
                Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b']') {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    loop {
                        self.skip_ws();
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.bytes.get(self.pos) {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Value::Seq(items));
                            }
                            _ => return Err(format!("bad array at byte {}", self.pos)),
                        }
                    }
                }
                Some(b'{') => {
                    self.pos += 1;
                    let mut entries = Vec::new();
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b'}') {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.eat(b':')?;
                        self.skip_ws();
                        let value = self.value()?;
                        entries.push((key, value));
                        self.skip_ws();
                        match self.bytes.get(self.pos) {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                return Ok(Value::Map(entries));
                            }
                            _ => return Err(format!("bad object at byte {}", self.pos)),
                        }
                    }
                }
                Some(_) => self.number(),
                None => Err("unexpected end of input".into()),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let escape = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                        self.pos += 1;
                        match escape {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let digits = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or("truncated \\u escape")?;
                                let code = std::str::from_utf8(digits)
                                    .ok()
                                    .and_then(|t| u32::from_str_radix(t, 16).ok())
                                    .and_then(char::from_u32)
                                    .ok_or("invalid \\u escape")?;
                                self.pos += 4;
                                out.push(code);
                            }
                            other => return Err(format!("invalid escape '\\{}'", other as char)),
                        }
                    }
                    Some(_) => {
                        let start = self.pos;
                        while let Some(&b) = self.bytes.get(self.pos) {
                            if b == b'"' || b == b'\\' {
                                break;
                            }
                            self.pos += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..self.pos])
                                .map_err(|_| "invalid utf-8".to_string())?,
                        );
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let reporter = JsonReporter::new("unit-test run");
        reporter.counter_add("dc.newton_iterations", 42);
        reporter.counter_add("maxflow.augmenting_paths", 7);
        reporter.observe("dc.final_residual", 3.25e-11);
        reporter.observe("dc.final_residual", 8.5e-12);
        reporter.record_span("dc.solve", Duration::from_micros(1234));
        reporter.warn("dc solver: fallback to gauss-seidel");
        let mut series = SampleSeries::new();
        series.extend((1..=100).map(f64::from));
        reporter.record_samples("engine.solve_seconds", &series);
        reporter.record_event("analog.dc.residual_trace", &[1e-3, 1e-7, 4e-13]);
        {
            let trace = crate::next_trace_id();
            let mut root = crate::TracedSpan::root(&reporter, "server.request", trace);
            root.attr("kind", "SubmitAnswer");
            let _child = root.child("server.verify");
        }
        reporter.report()
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let report = sample_report();
        let text = report.to_json();
        let back = Report::from_json(&text).expect("report should parse back");
        assert_eq!(back, report);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = JsonReporter::new("empty").report();
        assert_eq!(Report::from_json(&report.to_json()).unwrap(), report);
    }

    #[test]
    fn schema_version_is_enforced() {
        let mut report = sample_report();
        report.schema_version = 999;
        let err = Report::from_json(&report.to_json()).unwrap_err();
        assert!(err.to_string().contains("schema_version"), "{err}");
    }

    #[test]
    fn missing_field_is_an_error() {
        assert!(Report::from_json("{\"schema_version\": 1}").is_err());
        assert!(Report::from_json("not json").is_err());
    }

    #[test]
    fn sample_summaries_round_trip() {
        let report = sample_report();
        let s = report.samples.get("engine.solve_seconds").expect("series was recorded");
        assert_eq!((s.count, s.p50, s.p95, s.p99), (100, 50.0, 95.0, 99.0));
        let back = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back.samples, report.samples);
    }

    #[test]
    fn reports_without_samples_section_still_parse() {
        // a v1 report written before the samples section existed
        let legacy = "{\"schema_version\": 1, \"label\": \"old\", \"counters\": {},\
             \"histograms\": {}, \"spans\": {}, \"warnings\": []}";
        let report = Report::from_json(legacy).expect("legacy report should parse");
        assert!(report.samples.is_empty());
        assert!(report.hists.is_empty());
        assert!(report.events.is_empty());
        assert!(report.traces.is_empty());
    }

    #[test]
    fn v2_reports_without_hists_section_still_parse() {
        // a v2 report written before the hists section existed
        let legacy = "{\"schema_version\": 2, \"label\": \"pre-hist\", \"counters\": {},\
             \"histograms\": {}, \"spans\": {}, \"warnings\": [], \"samples\": {},\
             \"events\": [], \"traces\": {}}";
        let report = Report::from_json(legacy).expect("pre-hist v2 report should parse");
        assert!(report.hists.is_empty());
    }

    #[test]
    fn hist_snapshots_round_trip() {
        let report = sample_report();
        let h = report.hists.get("dc.solve").expect("span histograms are always recorded");
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), h.count);
        assert!((h.sum - 1234e-6).abs() < 1e-9);
        let back = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back.hists, report.hists);
    }

    #[test]
    fn schema_versions_outside_the_supported_range_are_rejected() {
        for bad in [0, SCHEMA_VERSION + 1] {
            let text = format!(
                "{{\"schema_version\": {bad}, \"label\": \"x\", \"counters\": {{}},\
                 \"histograms\": {{}}, \"spans\": {{}}, \"warnings\": []}}"
            );
            let err = Report::from_json(&text).unwrap_err();
            assert!(err.to_string().contains("schema_version"), "{err}");
        }
    }

    #[test]
    fn events_and_traces_round_trip() {
        let report = sample_report();
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].values, vec![1e-3, 1e-7, 4e-13]);
        assert_eq!(report.traces.len(), 1);
        let spans = report.traces.values().next().unwrap();
        assert_eq!(spans.len(), 2);
        // the child finished first, so it is recorded first and names
        // the root (recorded second) as its parent
        assert_eq!(spans[0].name, "server.verify");
        assert_eq!(spans[0].parent, Some(spans[1].span));
        assert_eq!(spans[1].name, "server.request");
        assert_eq!(spans[1].attrs, vec![("kind".to_string(), "SubmitAnswer".to_string())]);
        let back = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back.events, report.events);
        assert_eq!(back.traces, report.traces);
    }

    #[test]
    fn profile_section_round_trips_and_is_omitted_when_empty() {
        // no profiler attached → no "profile" key in the JSON at all
        let plain = sample_report();
        assert!(plain.profile.is_empty());
        assert!(!plain.to_json().contains("\"profile\""));

        let mut recorder = MemoryRecorder::new();
        let profiler = std::sync::Arc::new(crate::Profiler::new());
        recorder.set_profiler(profiler.clone());
        profiler.record_path(
            "analog.dc.solve;stamp",
            Duration::from_millis(2),
            Duration::from_micros(500),
        );
        // a skewed derivation surfaces as a counter in the snapshot
        profiler.record_path("bad", Duration::from_micros(1), Duration::from_micros(9));
        let report = recorder.snapshot("profiled");
        let entry = report.profile.get("analog.dc.solve;stamp").expect("profile entry");
        assert_eq!(entry.count, 1);
        assert!((entry.self_s - 500e-6).abs() < 1e-9);
        assert_eq!(report.counters.get("telemetry.profile.skew_clamps"), Some(&1));
        let back = Report::from_json(&report.to_json()).expect("profiled report parses");
        assert_eq!(back, report);
    }

    #[test]
    fn reports_without_profile_section_still_parse() {
        let legacy = "{\"schema_version\": 2, \"label\": \"pre-profile\", \"counters\": {},\
             \"histograms\": {}, \"spans\": {}, \"warnings\": [], \"samples\": {},\
             \"hists\": {}, \"events\": [], \"traces\": {}}";
        let report = Report::from_json(legacy).expect("pre-profile v2 report should parse");
        assert!(report.profile.is_empty());
    }

    #[test]
    fn counter_delta_reports_signed_differences() {
        let old = sample_report();
        let mut new = old.clone();
        new.counters.insert("dc.newton_iterations".into(), 50);
        new.counters.remove("maxflow.augmenting_paths");
        new.counters.insert("fresh".into(), 3);
        let delta = new.counter_delta(&old);
        assert_eq!(delta.get("dc.newton_iterations"), Some(&8));
        assert_eq!(delta.get("maxflow.augmenting_paths"), Some(&-7));
        assert_eq!(delta.get("fresh"), Some(&3));
    }

    #[test]
    fn write_to_creates_directories() {
        let dir = std::env::temp_dir().join("ppuf-telemetry-test").join("nested");
        let path = dir.join("report.json");
        let _ = std::fs::remove_file(&path);
        let reporter = JsonReporter::new("io-test");
        reporter.counter_add("k", 1);
        reporter.write_to(&path).expect("write should succeed");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Report::from_json(&text).unwrap(), reporter.report());
        let _ = std::fs::remove_file(&path);
    }
}
