//! Bounded HDR-style log-bucketed histograms.
//!
//! [`SampleSeries`](crate::SampleSeries) keeps every sample exactly, which
//! is fine for a one-shot load test but unbounded on an always-on serving
//! path. [`LogHistogram`] is the production counterpart: a fixed array of
//! [`HIST_BUCKET_COUNT`] counters whose bucket edges grow geometrically
//! ([`HIST_SUB_BUCKETS`] buckets per factor-of-two octave, starting at
//! [`HIST_MIN_VALUE`]), so memory is constant, recording is one array
//! increment, and any quantile is readable with bounded relative error —
//! one bucket width, i.e. a factor of `2^(1/8) ≈ 1.0905`.
//!
//! Exact `count`/`sum`/`min`/`max` are carried alongside the buckets, so
//! mean and extremes stay exact and quantile estimates can be clamped into
//! `[min, max]`. Histograms with the same (compile-time) bucket scheme
//! merge by adding counters, which is how per-thread or per-cohort
//! histograms combine into a fleet view.
//!
//! Bucket semantics follow Prometheus: bucket `i` counts samples `v` with
//! `v ≤ upper_edge(i)` and `v > upper_edge(i-1)`; bucket 0 catches
//! everything at or below [`HIST_MIN_VALUE`] (including zero and negative
//! values) and the last bucket catches overflow. With 60 octaves above
//! 1e-9, the covered range ends near 1.15e9, so any plausible latency in
//! seconds — or milliseconds — lands in a real bucket.

use crate::SampleSummary;

/// Upper edge of bucket 0; values at or below this (seconds, typically)
/// are indistinguishable from "instant".
pub const HIST_MIN_VALUE: f64 = 1e-9;

/// Buckets per octave (factor of two). 8 gives ~9.05% worst-case relative
/// quantile error — comfortably inside "one bucket width" for SLO math.
pub const HIST_SUB_BUCKETS: u32 = 8;

/// Octaves covered above [`HIST_MIN_VALUE`].
const HIST_OCTAVES: usize = 60;

/// Total bucket count; fixes the memory footprint at
/// `HIST_BUCKET_COUNT * 8` bytes of counters per histogram.
pub const HIST_BUCKET_COUNT: usize = HIST_OCTAVES * HIST_SUB_BUCKETS as usize;

/// Multiplicative width of one bucket: `2^(1/HIST_SUB_BUCKETS)`.
pub fn hist_bucket_growth() -> f64 {
    (1.0 / HIST_SUB_BUCKETS as f64).exp2()
}

/// Upper edge of bucket `index`: `HIST_MIN_VALUE · 2^(index / 8)`.
pub fn hist_bucket_upper_edge(index: usize) -> f64 {
    HIST_MIN_VALUE * (index as f64 / HIST_SUB_BUCKETS as f64).exp2()
}

/// Index of the bucket whose range contains `value`.
fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= HIST_MIN_VALUE {
        // NaN, ≤ MIN, zero, negative — all land in the catch-all bottom bucket
        return 0;
    }
    let sub_octaves = (value / HIST_MIN_VALUE).log2() * HIST_SUB_BUCKETS as f64;
    // smallest i with value ≤ upper_edge(i); ceil keeps edges inclusive
    (sub_octaves.ceil() as usize).min(HIST_BUCKET_COUNT - 1)
}

/// Fixed-memory log-bucketed histogram; see the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: vec![0; HIST_BUCKET_COUNT],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LogHistogram {
    /// Creates an empty histogram (allocates its bucket array once).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Allocation-free. Non-finite values are dropped,
    /// matching [`SampleSeries`](crate::SampleSeries).
    #[inline]
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (exact); `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest sample (exact); `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Arithmetic mean (exact); `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.sum / self.count as f64)
    }

    /// Adds every sample of `other` into `self`. Both sides share the
    /// compile-time bucket scheme, so this is exact bucket addition.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile estimate (`0.0 ≤ q ≤ 1.0`): the upper edge of the
    /// bucket holding the nearest-rank sample, clamped into `[min, max]`.
    /// The estimate never undershoots the exact nearest-rank value and
    /// overshoots by at most one bucket width (×1.0905). `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.is_empty() {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(hist_bucket_upper_edge(i).min(self.max).max(self.min));
            }
        }
        unreachable!("bucket counts always sum to the total count")
    }

    /// The p99.9 estimate — the long-tail number the exact
    /// [`SampleSummary`] does not carry. `None` when empty.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Summarizes as the same [`SampleSummary`] shape the exact path
    /// produces, so report schemas stay unchanged: count/min/max/mean are
    /// exact, percentiles are bucket-resolution estimates.
    pub fn summary(&self) -> Option<SampleSummary> {
        if self.is_empty() {
            return None;
        }
        Some(SampleSummary {
            count: self.count as usize,
            min: self.min,
            max: self.max,
            mean: self.sum / self.count as f64,
            p50: self.quantile(0.50).expect("non-empty"),
            p95: self.quantile(0.95).expect("non-empty"),
            p99: self.quantile(0.99).expect("non-empty"),
        })
    }

    /// Copies the non-empty buckets out as a compact [`HistogramSnapshot`]
    /// for reports and Prometheus exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| HistBucket { le: hist_bucket_upper_edge(i), count: *c })
                .collect(),
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(f64::NAN),
            max: self.max().unwrap_or(f64::NAN),
        }
    }
}

/// One non-empty histogram bucket: `count` samples at or below `le`
/// (and above the previous snapshot bucket's `le`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistBucket {
    /// Inclusive upper edge of the bucket.
    pub le: f64,
    /// Samples in this bucket (non-cumulative).
    pub count: u64,
}

/// Serializable sparse copy of a [`LogHistogram`]: only the non-empty
/// buckets, in ascending `le` order, plus the exact moments.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Non-empty buckets, ascending by `le`, counts non-cumulative.
    pub buckets: Vec<HistBucket>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: f64,
    /// Exact smallest sample (`NaN` when empty).
    pub min: f64,
    /// Exact largest sample (`NaN` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Same estimator as [`LogHistogram::quantile`], over the sparse
    /// buckets. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.le.min(self.max).max(self.min));
            }
        }
        unreachable!("snapshot buckets always sum to the total count")
    }
}

// With the `serde` feature, snapshots embed directly in report structs
// downstream crates derive (loadgen cohort reports, bench trajectories).
// Impls are hand-written because the types must keep compiling without
// the feature; the field layout matches `report.rs` hist sections.
#[cfg(feature = "serde")]
mod serde_impls {
    use super::{HistBucket, HistogramSnapshot};
    use serde::{Deserialize, Error, Serialize, Value};

    impl Serialize for HistBucket {
        fn to_value(&self) -> Value {
            Value::Map(vec![
                ("le".to_string(), self.le.to_value()),
                ("count".to_string(), self.count.to_value()),
            ])
        }
    }

    impl<'de> Deserialize<'de> for HistBucket {
        fn from_value(value: &Value) -> Result<Self, Error> {
            let field = |key: &str| {
                value
                    .get(key)
                    .ok_or_else(|| Error::custom(format!("HistBucket missing field {key:?}")))
            };
            Ok(HistBucket {
                le: f64::from_value(field("le")?)?,
                count: u64::from_value(field("count")?)?,
            })
        }
    }

    impl Serialize for HistogramSnapshot {
        fn to_value(&self) -> Value {
            Value::Map(vec![
                ("count".to_string(), self.count.to_value()),
                ("sum".to_string(), self.sum.to_value()),
                ("min".to_string(), self.min.to_value()),
                ("max".to_string(), self.max.to_value()),
                ("buckets".to_string(), self.buckets.to_value()),
            ])
        }
    }

    impl<'de> Deserialize<'de> for HistogramSnapshot {
        fn from_value(value: &Value) -> Result<Self, Error> {
            let field = |key: &str| {
                value.get(key).ok_or_else(|| {
                    Error::custom(format!("HistogramSnapshot missing field {key:?}"))
                })
            };
            Ok(HistogramSnapshot {
                buckets: Vec::from_value(field("buckets")?)?,
                count: u64::from_value(field("count")?)?,
                sum: f64::from_value(field("sum")?)?,
                min: f64::from_value(field("min")?)?,
                max: f64::from_value(field("max")?)?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn snapshot_round_trips_through_the_value_model() {
            let mut h = crate::LogHistogram::new();
            for i in 1..=50 {
                h.record(i as f64 * 1e-3);
            }
            let snapshot = h.snapshot();
            let back = HistogramSnapshot::from_value(&snapshot.to_value()).unwrap();
            assert_eq!(back, snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SampleSeries;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.summary(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn single_sample_is_every_percentile_exactly() {
        // the clamp into [min, max] collapses every quantile of a
        // single-sample histogram to the sample itself
        let mut h = LogHistogram::new();
        h.record(3.25);
        let s = h.summary().unwrap();
        assert_eq!((s.count, s.min, s.max, s.mean), (1, 3.25, 3.25, 3.25));
        assert_eq!((s.p50, s.p95, s.p99), (3.25, 3.25, 3.25));
        assert_eq!(h.p999(), Some(3.25));
    }

    #[test]
    fn bucket_edges_grow_geometrically() {
        let growth = hist_bucket_growth();
        assert!((growth - 2f64.powf(0.125)).abs() < 1e-15);
        assert_eq!(hist_bucket_upper_edge(0), HIST_MIN_VALUE);
        assert!(
            (hist_bucket_upper_edge(HIST_SUB_BUCKETS as usize) / HIST_MIN_VALUE - 2.0).abs()
                < 1e-12
        );
        for i in 1..64 {
            let ratio = hist_bucket_upper_edge(i) / hist_bucket_upper_edge(i - 1);
            assert!((ratio - growth).abs() < 1e-12, "bucket {i} ratio {ratio}");
        }
    }

    #[test]
    fn extreme_values_land_in_edge_buckets_without_panicking() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(1e-12); // below MIN
        h.record(1e300); // far above the covered range
        h.record(f64::NAN); // dropped
        assert_eq!(h.len(), 4);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(1e300));
        let snap = h.snapshot();
        assert_eq!(snap.buckets.first().unwrap().count, 3, "bottom catch-all bucket");
        assert_eq!(snap.buckets.last().unwrap().count, 1, "top overflow bucket");
    }

    #[test]
    fn quantiles_agree_with_exact_percentiles_within_one_bucket() {
        // the acceptance bound for replacing the exact SampleSeries path:
        // estimate never undershoots, never overshoots by more than one
        // bucket width (2^(1/8))
        let growth = hist_bucket_growth();
        let mut series = SampleSeries::new();
        let mut h = LogHistogram::new();
        let mut x = 0x243f6a8885a308d3u64; // deterministic xorshift
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // log-uniform over roughly [1e-4, 10] — a latency-like spread
            let v = 1e-4 * (5.0 * (x as f64 / u64::MAX as f64)).exp2().powi(2);
            series.record(v);
            h.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = series.quantile(q).unwrap();
            let est = h.quantile(q).unwrap();
            assert!(est >= exact * (1.0 - 1e-12), "q={q}: est {est} undershoots exact {exact}");
            assert!(
                est <= exact * growth * (1.0 + 1e-12),
                "q={q}: est {est} more than one bucket above exact {exact}"
            );
        }
        // exact moments are exact, not estimates
        let s = series.summary().unwrap();
        let hs = h.summary().unwrap();
        assert_eq!(hs.count, s.count);
        assert_eq!(hs.min, s.min);
        assert_eq!(hs.max, s.max);
        assert!((hs.mean - s.mean).abs() < 1e-12 * s.mean.abs());
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 1..=50 {
            a.record(i as f64 * 1e-3);
            whole.record(i as f64 * 1e-3);
        }
        for i in 51..=100 {
            b.record(i as f64 * 1e-3);
            whole.record(i as f64 * 1e-3);
        }
        a.merge(&b);
        // sums differ only by addition order, so compare them approximately
        // and everything else exactly
        assert_eq!(a.snapshot().buckets, whole.snapshot().buckets);
        assert!((a.sum() - whole.sum()).abs() < 1e-12);
        assert_eq!(a.len(), 100);
        assert_eq!(a.min(), Some(1e-3));
        assert_eq!(a.max(), Some(0.1));
    }

    #[test]
    fn snapshot_quantile_matches_histogram_quantile() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 2.5e-4);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 1000);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(snap.quantile(q), h.quantile(q), "q={q}");
        }
        // sparse buckets are sorted ascending by edge
        for w in snap.buckets.windows(2) {
            assert!(w[0].le < w[1].le);
        }
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_quantile_panics() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        let _ = h.quantile(1.5);
    }
}
