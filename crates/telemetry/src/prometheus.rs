//! Prometheus text exposition of a [`Report`], plus a validator for CI.
//!
//! [`render`] turns a recorder snapshot into the Prometheus text format
//! (version 0.0.4): counters become `ppuf_*_total` counters, span and
//! histogram aggregates become `*_sum`/`*_count` summaries, and live
//! values the report cannot carry (queue depth, cache entries) are passed
//! in as gauges. A handful of protocol-level counters are always emitted
//! — zero when never touched — so dashboards and the smoke-test scraper
//! can rely on their presence.
//!
//! [`validate`] parses an exposition back into a name→value map and
//! rejects drift (bad metric names, missing or mistyped `# TYPE` lines,
//! counters not ending in `_total`, duplicate samples); scraping twice
//! and feeding both maps to [`check_monotone`] locks counter
//! monotonicity.

use std::collections::BTreeMap;

use crate::report::Report;

/// Counter-name translations from recorder keys to stable Prometheus
/// names; anything not listed falls back to `ppuf_<sanitized>_total`.
const ALIASES: &[(&str, &str)] = &[
    ("server.requests", "ppuf_requests_total"),
    ("server.connections", "ppuf_connections_total"),
    ("server.cache.hits", "ppuf_cache_hits_total"),
    ("server.cache.misses", "ppuf_cache_misses_total"),
    ("server.cache.evictions", "ppuf_cache_evictions_total"),
    ("analog.dc.warm_start_hits", "ppuf_dc_warm_start_hits_total"),
    ("analog.dc.warm_start_misses", "ppuf_dc_warm_start_misses_total"),
];

/// Counters emitted even when their recorder key was never touched, so
/// scrapers can rely on their presence from the first request on.
const WELL_KNOWN: &[&str] = &[
    "ppuf_requests_total",
    "ppuf_cache_hits_total",
    "ppuf_cache_misses_total",
    "ppuf_cache_evictions_total",
    "ppuf_dc_warm_start_hits_total",
    "ppuf_dc_warm_start_misses_total",
];

/// Stable exposition name for a recorder counter key.
pub fn counter_metric_name(raw: &str) -> String {
    for (from, to) in ALIASES {
        if raw == *from {
            return (*to).to_string();
        }
    }
    format!("ppuf_{}_total", sanitize(raw))
}

fn sanitize(raw: &str) -> String {
    raw.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

fn format_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value:?}")
    }
}

/// Renders `report` (plus live `gauges`, named verbatim) as Prometheus
/// exposition text.
pub fn render(report: &Report, gauges: &[(String, f64)]) -> String {
    let mut counters: BTreeMap<String, u64> =
        WELL_KNOWN.iter().map(|n| ((*n).to_string(), 0)).collect();
    for (name, value) in &report.counters {
        let metric = counter_metric_name(name);
        let slot = counters.entry(metric).or_insert(0);
        *slot = slot.saturating_add(*value);
    }
    let mut out = String::new();
    for (name, value) in &counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    // span and histogram aggregates expose as quantile-less summaries —
    // _sum/_count carry the load; percentiles live in the JSON report
    let summaries = report
        .spans
        .iter()
        .map(|(name, s)| (format!("ppuf_span_{}_seconds", sanitize(name)), s))
        .chain(
            report.histograms.iter().map(|(name, s)| (format!("ppuf_hist_{}", sanitize(name)), s)),
        )
        .collect::<BTreeMap<_, _>>();
    for (base, s) in &summaries {
        out.push_str(&format!(
            "# TYPE {base} summary\n{base}_sum {}\n{base}_count {}\n",
            format_value(s.sum),
            s.count
        ));
    }
    for (name, value) in gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", format_value(*value)));
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses Prometheus exposition text into a sample-name→value map.
///
/// # Errors
///
/// Returns a description of the first problem found: empty input, a
/// malformed or duplicate `# TYPE` line, an unknown metric type, a
/// sample without a preceding `# TYPE`, a counter not ending in
/// `_total`, an invalid metric name or value, a duplicate sample, or a
/// declared metric with no samples.
pub fn validate(text: &str) -> Result<BTreeMap<String, f64>, String> {
    if text.trim().is_empty() {
        return Err("empty exposition".to_string());
    }
    let mut types: BTreeMap<String, &str> = BTreeMap::new();
    let mut sampled: BTreeMap<String, bool> = BTreeMap::new();
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let describe = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some(kind), None) => (name, kind),
                _ => return Err(describe("malformed TYPE line")),
            };
            if !valid_metric_name(name) {
                return Err(describe("invalid metric name in TYPE line"));
            }
            let kind = match kind {
                "counter" => "counter",
                "gauge" => "gauge",
                "summary" => "summary",
                "histogram" => "histogram",
                _ => return Err(describe("unknown metric type")),
            };
            if kind == "counter" && !name.ends_with("_total") {
                return Err(describe("counter does not end in _total"));
            }
            if types.insert(name.to_string(), kind).is_some() {
                return Err(describe("duplicate TYPE line"));
            }
            sampled.insert(name.to_string(), false);
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        if line.starts_with('#') {
            return Err(describe("unrecognized comment line"));
        }
        let (name, value) = match line.split_once(' ') {
            Some((name, value)) => (name, value.trim()),
            None => return Err(describe("sample line without a value")),
        };
        if !valid_metric_name(name) {
            return Err(describe("invalid metric name"));
        }
        let value: f64 = match value {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            other => other.parse().map_err(|_| describe("invalid sample value"))?,
        };
        // a sample must belong to a declared metric: its own name for
        // counters/gauges, or base_sum/base_count for summaries
        let base = match types.get(name).copied() {
            Some("counter") | Some("gauge") => name,
            _ => {
                let base = name
                    .strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"))
                    .filter(|base| matches!(types.get(*base), Some(&"summary" | &"histogram")));
                match base {
                    Some(base) => base,
                    None => return Err(describe("sample without a preceding TYPE line")),
                }
            }
        };
        sampled.insert(base.to_string(), true);
        if samples.insert(name.to_string(), value).is_some() {
            return Err(describe("duplicate sample"));
        }
    }
    for (name, seen) in &sampled {
        if !seen {
            return Err(format!("metric {name} declared but never sampled"));
        }
    }
    if samples.is_empty() {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

/// Checks that every cumulative sample (`*_total`, `*_count`) present in
/// `before` is still present and has not decreased in `after`.
///
/// # Errors
///
/// Names the first counter that disappeared or went backwards.
pub fn check_monotone(
    before: &BTreeMap<String, f64>,
    after: &BTreeMap<String, f64>,
) -> Result<(), String> {
    for (name, &old) in before {
        if !(name.ends_with("_total") || name.ends_with("_count")) {
            continue;
        }
        match after.get(name) {
            None => return Err(format!("counter {name} disappeared between scrapes")),
            Some(&new) if new < old => {
                return Err(format!("counter {name} went backwards: {old} -> {new}"))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryRecorder, Recorder};
    use std::time::Duration;

    fn exposition() -> String {
        let r = MemoryRecorder::new();
        r.counter_add("server.requests", 90);
        r.counter_add("server.cache.hits", 42);
        r.counter_add("analog.dc.warm_start_hits", 2);
        r.counter_add("maxflow.dinic.bfs_passes", 7);
        r.observe("analog.dc.residual_norm", 1e-12);
        r.record_span("server.verify", Duration::from_millis(3));
        render(&r.snapshot("test"), &[("ppuf_pool_queue_depth".to_string(), 1.0)])
    }

    #[test]
    fn render_exposes_aliases_fallbacks_and_well_known_zeros() {
        let text = exposition();
        assert!(text.contains("# TYPE ppuf_requests_total counter\nppuf_requests_total 90\n"));
        assert!(text.contains("ppuf_cache_hits_total 42\n"));
        assert!(text.contains("ppuf_dc_warm_start_hits_total 2\n"));
        // untouched well-known counters still show up as zeros
        assert!(text.contains("ppuf_cache_misses_total 0\n"));
        assert!(text.contains("ppuf_cache_evictions_total 0\n"));
        // unaliased counters go through the generic scheme
        assert!(text.contains("ppuf_maxflow_dinic_bfs_passes_total 7\n"));
        // spans/histograms expose as summaries, gauges pass through
        assert!(text.contains("# TYPE ppuf_span_server_verify_seconds summary"));
        assert!(text.contains("ppuf_span_server_verify_seconds_count 1\n"));
        assert!(text.contains("ppuf_hist_analog_dc_residual_norm_sum 1e-12\n"));
        assert!(text.contains("# TYPE ppuf_pool_queue_depth gauge\nppuf_pool_queue_depth 1.0\n"));
    }

    #[test]
    fn validate_round_trips_render_output() {
        let samples = validate(&exposition()).expect("rendered exposition should validate");
        assert_eq!(samples.get("ppuf_requests_total"), Some(&90.0));
        assert_eq!(samples.get("ppuf_cache_hits_total"), Some(&42.0));
        assert_eq!(samples.get("ppuf_span_server_verify_seconds_count"), Some(&1.0));
        assert_eq!(samples.get("ppuf_pool_queue_depth"), Some(&1.0));
    }

    #[test]
    fn validate_rejects_drift() {
        assert!(validate("").is_err());
        assert!(validate("   \n").is_err());
        assert!(validate("ppuf_x_total 1\n").is_err(), "sample without TYPE");
        assert!(validate("# TYPE ppuf_x counter\nppuf_x 1\n").is_err(), "counter w/o _total");
        assert!(validate("# TYPE ppuf_x_total widget\nppuf_x_total 1\n").is_err());
        assert!(validate("# TYPE ppuf_x_total counter\n").is_err(), "declared, never sampled");
        assert!(validate("# TYPE ppuf_x_total counter\nppuf_x_total one\n").is_err(), "bad value");
        assert!(
            validate("# TYPE ppuf_x_total counter\nppuf_x_total 1\nppuf_x_total 2\n").is_err(),
            "duplicate sample"
        );
        assert!(validate("# TYPE 9bad_total counter\n9bad_total 1\n").is_err(), "bad metric name");
    }

    #[test]
    fn monotone_check_catches_regressions() {
        let before = validate("# TYPE a_total counter\na_total 5\n# TYPE g gauge\ng 9\n").unwrap();
        let ok = validate("# TYPE a_total counter\na_total 6\n# TYPE g gauge\ng 1\n").unwrap();
        assert!(check_monotone(&before, &ok).is_ok(), "gauges may move freely");
        let bad = validate("# TYPE a_total counter\na_total 4\n").unwrap();
        assert!(check_monotone(&before, &bad).is_err());
        let gone = validate("# TYPE b_total counter\nb_total 1\n").unwrap();
        assert!(check_monotone(&before, &gone).is_err());
    }
}
