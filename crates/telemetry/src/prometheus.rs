//! Prometheus text exposition of a [`Report`], plus a validator for CI.
//!
//! [`render`] turns a recorder snapshot into the Prometheus text format
//! (version 0.0.4): counters become `ppuf_*_total` counters, observed
//! value distributions become `*_sum`/`*_count` summaries, spans whose
//! report carries a bucketed snapshot become full `histogram` families
//! with cumulative `*_bucket{le="..."}` lines, and live values the
//! report cannot carry (queue depth, cache entries, `ppuf_slo_*` health)
//! are passed in as gauges. A handful of protocol-level counters are
//! always emitted — zero when never touched — so dashboards and the
//! smoke-test scraper can rely on their presence. Reports carrying a
//! hierarchical `profile` section additionally expose the top-K call
//! paths by self time as `ppuf_profile_self_seconds_total{path="..."}`
//! counters (K = [`crate::profile::DEFAULT_TOP_K`], so profile label
//! cardinality stays bounded).
//!
//! [`validate`] parses an exposition back into a name→value map (bucket
//! samples keyed with their `{le="..."}` label) and rejects drift: bad
//! metric or label names, missing or mistyped `# TYPE` lines, counters
//! not ending in `_total`, duplicate samples, `_bucket` samples without
//! an `le` label or a declared histogram, non-cumulative bucket counts,
//! and a missing or inconsistent `+Inf` bucket. Scraping twice and
//! feeding both maps to [`check_monotone`] locks counter *and* bucket
//! monotonicity across scrapes.

use std::collections::BTreeMap;

use crate::report::Report;

/// Counter-name translations from recorder keys to stable Prometheus
/// names; anything not listed falls back to `ppuf_<sanitized>_total`.
const ALIASES: &[(&str, &str)] = &[
    ("server.requests", "ppuf_requests_total"),
    ("server.connections", "ppuf_connections_total"),
    ("server.cache.hits", "ppuf_cache_hits_total"),
    ("server.cache.misses", "ppuf_cache_misses_total"),
    ("server.cache.evictions", "ppuf_cache_evictions_total"),
    ("analog.dc.warm_start_hits", "ppuf_dc_warm_start_hits_total"),
    ("analog.dc.warm_start_misses", "ppuf_dc_warm_start_misses_total"),
];

/// Counters emitted even when their recorder key was never touched, so
/// scrapers can rely on their presence from the first request on.
const WELL_KNOWN: &[&str] = &[
    "ppuf_requests_total",
    "ppuf_cache_hits_total",
    "ppuf_cache_misses_total",
    "ppuf_cache_evictions_total",
    "ppuf_dc_warm_start_hits_total",
    "ppuf_dc_warm_start_misses_total",
];

/// Stable exposition name for a recorder counter key.
pub fn counter_metric_name(raw: &str) -> String {
    for (from, to) in ALIASES {
        if raw == *from {
            return (*to).to_string();
        }
    }
    format!("ppuf_{}_total", sanitize(raw))
}

fn sanitize(raw: &str) -> String {
    raw.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

fn format_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value:?}")
    }
}

/// Renders `report` (plus live `gauges`, named verbatim) as Prometheus
/// exposition text.
pub fn render(report: &Report, gauges: &[(String, f64)]) -> String {
    let mut counters: BTreeMap<String, u64> =
        WELL_KNOWN.iter().map(|n| ((*n).to_string(), 0)).collect();
    for (name, value) in &report.counters {
        let metric = counter_metric_name(name);
        let slot = counters.entry(metric).or_insert(0);
        *slot = slot.saturating_add(*value);
    }
    let mut out = String::new();
    for (name, value) in &counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    // observed value distributions expose as quantile-less summaries —
    // _sum/_count carry the load; percentiles live in the JSON report
    for (name, s) in &report.histograms {
        let base = format!("ppuf_hist_{}", sanitize(name));
        out.push_str(&format!(
            "# TYPE {base} summary\n{base}_sum {}\n{base}_count {}\n",
            format_value(s.sum),
            s.count
        ));
    }
    // spans become full histogram families when the report carries their
    // bucketed snapshot; reports from before the `hists` section fall
    // back to the summary shape
    for (name, s) in &report.spans {
        let base = format!("ppuf_span_{}_seconds", sanitize(name));
        match report.hists.get(name) {
            Some(h) => {
                out.push_str(&format!("# TYPE {base} histogram\n"));
                let mut cumulative = 0u64;
                for b in &h.buckets {
                    cumulative += b.count;
                    out.push_str(&format!(
                        "{base}_bucket{{le=\"{}\"}} {cumulative}\n",
                        format_value(b.le)
                    ));
                }
                out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!(
                    "{base}_sum {}\n{base}_count {}\n",
                    format_value(h.sum),
                    h.count
                ));
            }
            None => {
                out.push_str(&format!(
                    "# TYPE {base} summary\n{base}_sum {}\n{base}_count {}\n",
                    format_value(s.sum),
                    s.count
                ));
            }
        }
    }
    // hierarchical profile: the top-K call paths by cumulative self
    // time, as labeled counters. Bounding at K keeps the scrape's label
    // cardinality fixed no matter how many paths the profiler learns.
    if !report.profile.is_empty() {
        let mut entries: Vec<(&str, f64)> =
            report.profile.iter().map(|(path, s)| (path.as_str(), s.self_s)).collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        entries.truncate(crate::profile::DEFAULT_TOP_K);
        entries.sort_by(|a, b| a.0.cmp(b.0));
        out.push_str("# TYPE ppuf_profile_self_seconds_total counter\n");
        for (path, self_s) in entries {
            out.push_str(&format!(
                "ppuf_profile_self_seconds_total{{path=\"{}\"}} {}\n",
                escape_label(path),
                format_value(self_s)
            ));
        }
    }
    for (name, value) in gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", format_value(*value)));
    }
    out
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Label pairs as borrowed `(key, value)` slices of the sample line.
type LabelPairs<'a> = Vec<(&'a str, &'a str)>;

/// Splits `name{key="value",...}` into the bare name and its label pairs.
fn parse_labels(sample: &str) -> Result<(&str, LabelPairs<'_>), String> {
    let Some((name, rest)) = sample.split_once('{') else {
        return Ok((sample, Vec::new()));
    };
    let body = rest.strip_suffix('}').ok_or("unterminated label set")?;
    let mut labels = Vec::new();
    for pair in body.split(',') {
        let (key, value) = pair.split_once('=').ok_or("label without '='")?;
        if !valid_label_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or("label value is not quoted")?;
        labels.push((key, value));
    }
    Ok((name, labels))
}

/// Parses Prometheus exposition text into a sample-name→value map; bucket
/// samples are keyed with their label set (`name_bucket{le="0.001"}`).
///
/// # Errors
///
/// Returns a description of the first problem found: empty input, a
/// malformed or duplicate `# TYPE` line, an unknown metric type, a
/// sample without a preceding `# TYPE`, a counter not ending in
/// `_total`, an invalid metric name, label, or value, a duplicate
/// sample, a declared metric with no samples, a `_bucket` sample without
/// an `le` label or a declared histogram, bucket counts that are not
/// cumulative in ascending `le` order, or a histogram whose `+Inf`
/// bucket is missing or disagrees with its `_count`.
pub fn validate(text: &str) -> Result<BTreeMap<String, f64>, String> {
    if text.trim().is_empty() {
        return Err("empty exposition".to_string());
    }
    let mut types: BTreeMap<String, &str> = BTreeMap::new();
    let mut sampled: BTreeMap<String, bool> = BTreeMap::new();
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();
    // per-histogram buckets in line order: (le, cumulative count)
    let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let describe = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some(kind), None) => (name, kind),
                _ => return Err(describe("malformed TYPE line")),
            };
            if !valid_metric_name(name) {
                return Err(describe("invalid metric name in TYPE line"));
            }
            let kind = match kind {
                "counter" => "counter",
                "gauge" => "gauge",
                "summary" => "summary",
                "histogram" => "histogram",
                _ => return Err(describe("unknown metric type")),
            };
            if kind == "counter" && !name.ends_with("_total") {
                return Err(describe("counter does not end in _total"));
            }
            if types.insert(name.to_string(), kind).is_some() {
                return Err(describe("duplicate TYPE line"));
            }
            sampled.insert(name.to_string(), false);
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        if line.starts_with('#') {
            return Err(describe("unrecognized comment line"));
        }
        let (key, value) = match line.rsplit_once(' ') {
            Some((key, value)) => (key, value.trim()),
            None => return Err(describe("sample line without a value")),
        };
        let (name, labels) = parse_labels(key).map_err(|e| describe(&e))?;
        if !valid_metric_name(name) {
            return Err(describe("invalid metric name"));
        }
        let value: f64 = match value {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            other => other.parse().map_err(|_| describe("invalid sample value"))?,
        };
        // a sample must belong to a declared metric: its own name for
        // counters/gauges, base_sum/base_count for summaries and
        // histograms, or base_bucket{le="..."} for histograms
        let base = match types.get(name).copied() {
            Some("counter") | Some("gauge") => name,
            _ => {
                if let Some(base) = name
                    .strip_suffix("_bucket")
                    .filter(|base| types.get(*base) == Some(&"histogram"))
                {
                    let le = labels
                        .iter()
                        .find(|(k, _)| *k == "le")
                        .map(|(_, v)| *v)
                        .ok_or_else(|| describe("_bucket sample without an le label"))?;
                    let le: f64 = match le {
                        "+Inf" => f64::INFINITY,
                        other => other.parse().map_err(|_| describe("invalid le label value"))?,
                    };
                    buckets.entry(base.to_string()).or_default().push((le, value));
                    base
                } else {
                    let base = name
                        .strip_suffix("_sum")
                        .or_else(|| name.strip_suffix("_count"))
                        .filter(|base| matches!(types.get(*base), Some(&"summary" | &"histogram")));
                    match base {
                        Some(base) => base,
                        None => return Err(describe("sample without a preceding TYPE line")),
                    }
                }
            }
        };
        sampled.insert(base.to_string(), true);
        if samples.insert(key.to_string(), value).is_some() {
            return Err(describe("duplicate sample"));
        }
    }
    for (name, seen) in &sampled {
        if !seen {
            return Err(format!("metric {name} declared but never sampled"));
        }
    }
    // every histogram's buckets must be cumulative: ascending le, counts
    // nondecreasing, ending in a +Inf bucket equal to the total count
    for (base, series) in &buckets {
        for pair in series.windows(2) {
            let ((le_a, n_a), (le_b, n_b)) = (pair[0], pair[1]);
            if le_b <= le_a {
                return Err(format!(
                    "histogram {base}: le edges not ascending ({le_a} then {le_b})"
                ));
            }
            if n_b < n_a {
                return Err(format!(
                    "histogram {base}: bucket counts not cumulative ({n_a} at le={le_a}, {n_b} at le={le_b})"
                ));
            }
        }
        let Some(&(last_le, last_count)) = series.last() else { continue };
        if last_le != f64::INFINITY {
            return Err(format!("histogram {base}: missing +Inf bucket"));
        }
        if let Some(&total) = samples.get(&format!("{base}_count")) {
            if last_count != total {
                return Err(format!(
                    "histogram {base}: +Inf bucket {last_count} disagrees with _count {total}"
                ));
            }
        }
    }
    if samples.is_empty() {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

/// Checks that every cumulative sample (`*_total`, `*_count`, and
/// per-bucket `*_bucket{le="..."}`) present in `before` is still present
/// and has not decreased in `after`.
///
/// # Errors
///
/// Names the first counter or bucket that disappeared or went backwards.
pub fn check_monotone(
    before: &BTreeMap<String, f64>,
    after: &BTreeMap<String, f64>,
) -> Result<(), String> {
    for (name, &old) in before {
        let bare = name.split('{').next().unwrap_or(name);
        if !(bare.ends_with("_total") || bare.ends_with("_count") || bare.ends_with("_bucket")) {
            continue;
        }
        match after.get(name) {
            None => return Err(format!("counter {name} disappeared between scrapes")),
            Some(&new) if new < old => {
                return Err(format!("counter {name} went backwards: {old} -> {new}"))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryRecorder, Recorder};
    use std::time::Duration;

    fn exposition() -> String {
        let r = MemoryRecorder::new();
        r.counter_add("server.requests", 90);
        r.counter_add("server.cache.hits", 42);
        r.counter_add("analog.dc.warm_start_hits", 2);
        r.counter_add("maxflow.dinic.bfs_passes", 7);
        r.observe("analog.dc.residual_norm", 1e-12);
        r.record_span("server.verify", Duration::from_millis(3));
        render(&r.snapshot("test"), &[("ppuf_pool_queue_depth".to_string(), 1.0)])
    }

    #[test]
    fn render_exposes_aliases_fallbacks_and_well_known_zeros() {
        let text = exposition();
        assert!(text.contains("# TYPE ppuf_requests_total counter\nppuf_requests_total 90\n"));
        assert!(text.contains("ppuf_cache_hits_total 42\n"));
        assert!(text.contains("ppuf_dc_warm_start_hits_total 2\n"));
        // untouched well-known counters still show up as zeros
        assert!(text.contains("ppuf_cache_misses_total 0\n"));
        assert!(text.contains("ppuf_cache_evictions_total 0\n"));
        // unaliased counters go through the generic scheme
        assert!(text.contains("ppuf_maxflow_dinic_bfs_passes_total 7\n"));
        // spans with bucketed snapshots expose as histograms, observed
        // distributions as summaries, gauges pass through
        assert!(text.contains("# TYPE ppuf_span_server_verify_seconds histogram"));
        assert!(text.contains("ppuf_span_server_verify_seconds_count 1\n"));
        assert!(text.contains("ppuf_span_server_verify_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("ppuf_hist_analog_dc_residual_norm_sum 1e-12\n"));
        assert!(text.contains("# TYPE ppuf_hist_analog_dc_residual_norm summary"));
        assert!(text.contains("# TYPE ppuf_pool_queue_depth gauge\nppuf_pool_queue_depth 1.0\n"));
    }

    #[test]
    fn validate_round_trips_render_output() {
        let samples = validate(&exposition()).expect("rendered exposition should validate");
        assert_eq!(samples.get("ppuf_requests_total"), Some(&90.0));
        assert_eq!(samples.get("ppuf_cache_hits_total"), Some(&42.0));
        assert_eq!(samples.get("ppuf_span_server_verify_seconds_count"), Some(&1.0));
        assert_eq!(samples.get("ppuf_span_server_verify_seconds_bucket{le=\"+Inf\"}"), Some(&1.0));
        assert_eq!(samples.get("ppuf_pool_queue_depth"), Some(&1.0));
    }

    #[test]
    fn span_histograms_expose_cumulative_buckets() {
        let r = MemoryRecorder::new();
        for ms in [1u64, 2, 3, 50, 400] {
            r.record_span("server.request", Duration::from_millis(ms));
        }
        let text = render(&r.snapshot("test"), &[]);
        let samples = validate(&text).expect("histogram exposition should validate");
        // cumulative: every bucket value ≤ the +Inf bucket == _count
        let inf = samples["ppuf_span_server_request_seconds_bucket{le=\"+Inf\"}"];
        assert_eq!(inf, 5.0);
        assert_eq!(samples["ppuf_span_server_request_seconds_count"], 5.0);
        let mut bucket_lines = 0;
        for (name, value) in &samples {
            if name.starts_with("ppuf_span_server_request_seconds_bucket{") {
                bucket_lines += 1;
                assert!(*value <= inf, "{name} above +Inf bucket");
            }
        }
        assert!(bucket_lines >= 6, "five distinct latencies plus +Inf, got {bucket_lines}");
    }

    #[test]
    fn validate_enforces_bucket_rules() {
        // _bucket needs a declared histogram
        assert!(validate("# TYPE h summary\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n").is_err());
        // _bucket needs an le label
        assert!(validate("# TYPE h histogram\nh_bucket 1\nh_count 1\nh_sum 1\n").is_err());
        // labels must be well-formed
        assert!(validate("# TYPE h histogram\nh_bucket{le=1} 1\nh_count 1\nh_sum 1\n").is_err());
        assert!(validate("# TYPE h histogram\nh_bucket{le=\"1\" 1\nh_count 1\nh_sum 1\n").is_err());
        // bucket counts must be cumulative in ascending le order
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
             h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"
        )
        .is_err());
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n\
             h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"
        )
        .is_err());
        // the +Inf bucket must exist and equal _count
        assert!(validate("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n").is_err());
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n\
             h_sum 1\nh_count 3\n"
        )
        .is_err());
        // a well-formed histogram passes
        let ok = validate(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\n\
             h_sum 1.5\nh_count 3\n",
        )
        .expect("well-formed histogram");
        assert_eq!(ok.get("h_bucket{le=\"1\"}"), Some(&2.0));
    }

    #[test]
    fn bucket_counts_are_monotone_across_double_scrape() {
        let r = MemoryRecorder::new();
        r.record_span("server.request", Duration::from_millis(2));
        r.record_span("server.request", Duration::from_millis(80));
        let before = validate(&render(&r.snapshot("scrape1"), &[])).unwrap();
        r.record_span("server.request", Duration::from_millis(2));
        r.record_span("server.request", Duration::from_millis(9));
        let after = validate(&render(&r.snapshot("scrape2"), &[])).unwrap();
        check_monotone(&before, &after).expect("buckets only ever grow");
        // and the check actually watches buckets: reversing the scrapes
        // must fail on a _bucket key, not just on _count
        let err = check_monotone(&after, &before).unwrap_err();
        assert!(err.contains("_bucket") || err.contains("_count"), "{err}");
        let shrunk = check_monotone(
            &validate("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n").unwrap(),
            &validate("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 4\n").unwrap(),
        )
        .unwrap_err();
        assert!(shrunk.contains("went backwards"), "{shrunk}");
    }

    #[test]
    fn profile_paths_export_as_bounded_labeled_counters() {
        let mut r = MemoryRecorder::new();
        let profiler = std::sync::Arc::new(crate::Profiler::new());
        r.set_profiler(profiler.clone());
        // more paths than the export bound, with distinct self times
        for i in 0..(crate::profile::DEFAULT_TOP_K + 5) {
            profiler
                .record_leaf(&format!("layer;phase{i:02}"), Duration::from_micros(i as u64 + 1));
        }
        let text = render(&r.snapshot("test"), &[]);
        let samples = validate(&text).expect("profile exposition should validate");
        let profile_lines =
            samples.keys().filter(|k| k.starts_with("ppuf_profile_self_seconds_total{")).count();
        assert_eq!(profile_lines, crate::profile::DEFAULT_TOP_K, "cardinality is bounded");
        // the largest self-time path survives the cut, the smallest does not
        let biggest = format!(
            "ppuf_profile_self_seconds_total{{path=\"layer;phase{:02}\"}}",
            crate::profile::DEFAULT_TOP_K + 4
        );
        assert!(samples.contains_key(&biggest), "{text}");
        assert!(!samples.contains_key("ppuf_profile_self_seconds_total{path=\"layer;phase00\"}"));
        // scraping twice keeps the labeled counters monotone
        profiler.record_leaf("layer;phase24", Duration::from_micros(50));
        let after = validate(&render(&r.snapshot("again"), &[])).unwrap();
        check_monotone(&samples, &after).expect("profile counters only grow");
    }

    #[test]
    fn slo_gauges_render_and_validate() {
        let r = MemoryRecorder::new();
        r.counter_add("server.requests", 1);
        let gauges = [
            ("ppuf_slo_health".to_string(), 0.0),
            ("ppuf_slo_latency_p99_seconds".to_string(), 0.012),
            ("ppuf_slo_overload_ratio".to_string(), 0.0),
            ("ppuf_slo_reject_ratio".to_string(), 0.25),
        ];
        let text = render(&r.snapshot("test"), &gauges);
        let samples = validate(&text).expect("slo gauges should validate");
        assert_eq!(samples.get("ppuf_slo_health"), Some(&0.0));
        assert_eq!(samples.get("ppuf_slo_latency_p99_seconds"), Some(&0.012));
        assert_eq!(samples.get("ppuf_slo_reject_ratio"), Some(&0.25));
    }

    #[test]
    fn validate_rejects_drift() {
        assert!(validate("").is_err());
        assert!(validate("   \n").is_err());
        assert!(validate("ppuf_x_total 1\n").is_err(), "sample without TYPE");
        assert!(validate("# TYPE ppuf_x counter\nppuf_x 1\n").is_err(), "counter w/o _total");
        assert!(validate("# TYPE ppuf_x_total widget\nppuf_x_total 1\n").is_err());
        assert!(validate("# TYPE ppuf_x_total counter\n").is_err(), "declared, never sampled");
        assert!(validate("# TYPE ppuf_x_total counter\nppuf_x_total one\n").is_err(), "bad value");
        assert!(
            validate("# TYPE ppuf_x_total counter\nppuf_x_total 1\nppuf_x_total 2\n").is_err(),
            "duplicate sample"
        );
        assert!(validate("# TYPE 9bad_total counter\n9bad_total 1\n").is_err(), "bad metric name");
    }

    #[test]
    fn monotone_check_catches_regressions() {
        let before = validate("# TYPE a_total counter\na_total 5\n# TYPE g gauge\ng 9\n").unwrap();
        let ok = validate("# TYPE a_total counter\na_total 6\n# TYPE g gauge\ng 1\n").unwrap();
        assert!(check_monotone(&before, &ok).is_ok(), "gauges may move freely");
        let bad = validate("# TYPE a_total counter\na_total 4\n").unwrap();
        assert!(check_monotone(&before, &bad).is_err());
        let gone = validate("# TYPE b_total counter\nb_total 1\n").unwrap();
        assert!(check_monotone(&before, &gone).is_err());
    }
}
