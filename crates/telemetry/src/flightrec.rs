//! Flight recorder: a fixed-size black box of recent finished span trees.
//!
//! A [`MemoryRecorder`](crate::MemoryRecorder) retains traces for *live*
//! inspection, but its ring is shared by all traffic and a burst of boring
//! requests evicts the interesting ones. The [`FlightRecorder`] is the
//! post-mortem counterpart: the serving layer pushes only *notable*
//! finished traces (verdicts, errors, overload rejections) plus structured
//! events into a small drop-oldest ring, and on a trigger — a failure
//! burst, pool saturation, or an admin `Dump` command — the whole box is
//! snapshotted into a schema-versioned [`Report`] that can be written to
//! disk and diffed like any other telemetry report.
//!
//! Bounds are hard: at most `capacity` traces and a bounded event ring,
//! oldest dropped first with drop counts, so the recorder's memory is
//! constant no matter how long the process runs. A disabled recorder
//! ([`FlightRecorder::disabled`]) rejects pushes before touching the lock
//! and never allocates, which keeps the always-on serving path free when
//! the black box is turned off.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard};

use crate::report::{EventRecord, Report};
use crate::{trace_records, EventLog, FinishedSpan, Summary, SCHEMA_VERSION};

/// Default number of traces the ring retains.
pub const DEFAULT_FLIGHT_TRACES: usize = 64;

/// Default event-ring capacity.
pub const DEFAULT_FLIGHT_EVENTS: usize = 256;

/// One retained trace: the finished spans of a single request, tagged
/// with the outcome label the pusher chose.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedTrace {
    /// Position in push order (monotone, counts across drops).
    pub seq: u64,
    /// Outcome label, e.g. `rejected_flow` or `overloaded`.
    pub label: String,
    /// The trace's finished spans, in recording order.
    pub spans: Vec<FinishedSpan>,
}

#[derive(Debug, Default)]
struct FlightState {
    traces: VecDeque<RecordedTrace>,
    next_seq: u64,
    dropped: u64,
}

/// Fixed-size drop-oldest ring of recent finished span trees + events.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    state: Mutex<FlightState>,
    events: EventLog,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_TRACES, DEFAULT_FLIGHT_EVENTS)
    }
}

impl FlightRecorder {
    /// Creates an enabled recorder retaining at most `traces` span trees
    /// and `events` events (each clamped to at least 1).
    pub fn new(traces: usize, events: usize) -> Self {
        FlightRecorder {
            enabled: true,
            capacity: traces.max(1),
            state: Mutex::new(FlightState::default()),
            events: EventLog::new(events),
        }
    }

    /// Creates a recorder that ignores every push and dumps empty
    /// reports, without ever locking or allocating.
    pub fn disabled() -> Self {
        FlightRecorder {
            enabled: false,
            capacity: 0,
            state: Mutex::new(FlightState::default()),
            events: EventLog::new(1),
        }
    }

    /// Whether pushes are retained.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Maximum retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.lock().traces.len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.lock().traces.is_empty()
    }

    /// Total traces discarded to make room so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Retained traces, oldest first.
    pub fn traces(&self) -> Vec<RecordedTrace> {
        self.lock().traces.iter().cloned().collect()
    }

    /// Pushes one finished trace tagged `label`. Empty span sets and
    /// disabled recorders are rejected before the lock is taken, so the
    /// rejecting path never allocates. Returns whether it was retained.
    pub fn push_trace(&self, label: &str, spans: Vec<FinishedSpan>) -> bool {
        if !self.enabled || spans.is_empty() {
            return false;
        }
        let mut state = self.lock();
        push_locked(&mut state, self.capacity, label, spans);
        true
    }

    /// Appends a structured event to the black box's own event ring.
    pub fn push_event(&self, name: &str, values: &[f64]) {
        if self.enabled {
            self.events.push(name, values);
        }
    }

    /// Snapshots the black box as a [`Report`] labeled `label`: every
    /// retained trace keyed `"{seq:06}:{trace_id:016x}"` (so keys sort
    /// chronologically), per-span-name duration summaries aggregated
    /// across the box, the event ring, and `flightrec.*` counters
    /// recording retention, drops, and per-outcome-label trace counts.
    pub fn dump(&self, label: &str) -> Report {
        snapshot_locked(&self.lock(), &self.events, label)
    }

    /// Atomically pushes the triggering trace and dumps, under one lock
    /// acquisition, so the dump always contains the trace that caused it
    /// even while other threads keep pushing.
    pub fn dump_with(
        &self,
        label: &str,
        trigger_label: &str,
        trigger: Vec<FinishedSpan>,
    ) -> Report {
        if !self.enabled || trigger.is_empty() {
            return self.dump(label);
        }
        let mut state = self.lock();
        push_locked(&mut state, self.capacity, trigger_label, trigger);
        snapshot_locked(&state, &self.events, label)
    }

    fn lock(&self) -> MutexGuard<'_, FlightState> {
        // a panicking pusher must not take the black box down with it
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn push_locked(state: &mut FlightState, capacity: usize, label: &str, spans: Vec<FinishedSpan>) {
    while state.traces.len() >= capacity {
        state.traces.pop_front();
        state.dropped += 1;
    }
    let seq = state.next_seq;
    state.next_seq += 1;
    state.traces.push_back(RecordedTrace { seq, label: label.to_string(), spans });
}

fn snapshot_locked(state: &FlightState, events: &EventLog, label: &str) -> Report {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    counters.insert("flightrec.traces.retained".into(), state.traces.len() as u64);
    counters.insert("flightrec.traces.dropped".into(), state.dropped);
    counters.insert("flightrec.events.dropped".into(), events.dropped());
    let mut spans: BTreeMap<String, Summary> = BTreeMap::new();
    let mut traces = BTreeMap::new();
    for t in &state.traces {
        *counters.entry(format!("flightrec.trace.{}", t.label)).or_insert(0) += 1;
        for s in &t.spans {
            spans.entry(s.name.clone()).or_default().record(s.duration.as_secs_f64());
        }
        let id = t.spans[0].trace;
        traces.insert(format!("{:06}:{id}", t.seq), trace_records(&t.spans));
    }
    Report {
        schema_version: SCHEMA_VERSION,
        label: label.to_string(),
        counters,
        histograms: BTreeMap::new(),
        spans,
        warnings: Vec::new(),
        samples: BTreeMap::new(),
        hists: BTreeMap::new(),
        profile: BTreeMap::new(),
        events: events
            .snapshot()
            .into_iter()
            .map(|e| EventRecord { seq: e.seq, name: e.name, values: e.values })
            .collect(),
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{next_trace_id, MemoryRecorder, TracedSpan};

    fn make_trace(recorder: &MemoryRecorder, name: &str) -> Vec<FinishedSpan> {
        let trace = next_trace_id();
        {
            let root = TracedSpan::root(recorder, name, trace);
            let _child = root.child("verify");
        }
        recorder.trace_spans(trace)
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let recorder = MemoryRecorder::new();
        let flight = FlightRecorder::new(2, 8);
        for i in 0..5 {
            let spans = make_trace(&recorder, &format!("request{i}"));
            assert!(flight.push_trace("ok", spans));
        }
        assert_eq!(flight.len(), 2);
        assert_eq!(flight.dropped(), 3);
        let retained = flight.traces();
        assert_eq!(retained[0].seq, 3);
        assert_eq!(retained[1].seq, 4);
        assert_eq!(retained[1].spans[1].name, "request4");
    }

    #[test]
    fn empty_pushes_are_rejected() {
        let flight = FlightRecorder::new(2, 8);
        assert!(!flight.push_trace("ok", Vec::new()));
        assert!(flight.is_empty());
    }

    #[test]
    fn disabled_recorder_retains_nothing() {
        let recorder = MemoryRecorder::new();
        let flight = FlightRecorder::disabled();
        assert!(!flight.enabled());
        assert!(!flight.push_trace("ok", make_trace(&recorder, "request")));
        flight.push_event("ignored", &[1.0]);
        let report = flight.dump("empty box");
        assert!(report.traces.is_empty());
        assert!(report.events.is_empty());
    }

    #[test]
    fn dump_is_a_parseable_schema_report() {
        let recorder = MemoryRecorder::new();
        let flight = FlightRecorder::new(4, 8);
        flight.push_trace("rejected_flow", make_trace(&recorder, "request"));
        flight.push_trace("accepted", make_trace(&recorder, "request"));
        flight.push_event("flightrec.trigger", &[1.0, 2.0]);
        let report = flight.dump("post-mortem");
        assert_eq!(report.label, "post-mortem");
        assert_eq!(report.counters.get("flightrec.traces.retained"), Some(&2));
        assert_eq!(report.counters.get("flightrec.trace.rejected_flow"), Some(&1));
        assert_eq!(report.counters.get("flightrec.trace.accepted"), Some(&1));
        assert_eq!(report.spans.get("request").unwrap().count, 2);
        assert_eq!(report.traces.len(), 2);
        assert_eq!(report.events.len(), 1);
        // keys sort chronologically because the seq prefix is zero-padded
        let keys: Vec<&String> = report.traces.keys().collect();
        assert!(keys[0] < keys[1]);
        let back = Report::from_json(&report.to_json()).expect("dump must round-trip");
        assert_eq!(back, report);
    }

    #[test]
    fn dump_with_always_contains_the_trigger() {
        let recorder = MemoryRecorder::new();
        let flight = FlightRecorder::new(1, 8);
        flight.push_trace("ok", make_trace(&recorder, "request"));
        let trigger = make_trace(&recorder, "request");
        let trigger_id = trigger[0].trace;
        let report = flight.dump_with("burst", "rejected_flow", trigger);
        assert!(
            report.traces.keys().any(|k| k.ends_with(&format!("{trigger_id}"))),
            "trigger trace must be in the dump even at capacity 1"
        );
    }
}
