//! Support vector machine trained with (simplified) SMO.
//!
//! The paper's strongest parametric model-building attack: an SVM with a
//! nonlinear radial-basis-function kernel (Rührmair et al. use the same
//! family against arbiter PUFs). Implemented from scratch: Platt's
//! sequential minimal optimization in the simplified two-α form, with a
//! precomputed kernel matrix.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// SVM kernel functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(x, z) = x · z` — enough to break the (linearly separable)
    /// arbiter PUF.
    Linear,
    /// `K(x, z) = exp(−γ ‖x − z‖²)` — the paper's nonlinear attack.
    Rbf {
        /// Kernel width `γ`.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    pub fn eval(&self, x: &[f64], z: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => x.iter().zip(z).map(|(a, b)| a * b).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = x.iter().zip(z).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
        }
    }

    /// A reasonable default `γ = 1/dimension` for ±1 features.
    pub fn rbf_for_dimension(dimension: usize) -> Kernel {
        Kernel::Rbf { gamma: 1.0 / dimension.max(1) as f64 }
    }
}

/// SMO training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Passes without α changes before stopping.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps.
    pub max_sweeps: usize,
    /// The kernel.
    pub kernel: Kernel,
    /// RNG seed for the second-α choice.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 1.0,
            tolerance: 1e-3,
            max_passes: 3,
            max_sweeps: 60,
            kernel: Kernel::Rbf { gamma: 0.05 },
            seed: 0x5eed,
        }
    }
}

/// A trained SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    support_vectors: Vec<Vec<f64>>,
    /// `α_i · y_i` for each support vector.
    coefficients: Vec<f64>,
    bias: f64,
    kernel: Kernel,
}

impl SvmModel {
    /// Trains on a dataset with simplified SMO.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train(data: &Dataset, params: &SvmParams) -> SvmModel {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        let x = data.features();
        let y = data.labels();
        // precomputed kernel matrix (training sets are capped upstream)
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = params.kernel.eval(&x[i], &x[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }
        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let f = |alpha: &[f64], b: f64, k: &[f64], idx: usize| -> f64 {
            let mut s = b;
            for (j, &a) in alpha.iter().enumerate() {
                if a != 0.0 {
                    s += a * y[j] * k[idx * n + j];
                }
            }
            s
        };
        let mut passes = 0usize;
        let mut sweeps = 0usize;
        while passes < params.max_passes && sweeps < params.max_sweeps {
            sweeps += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = f(&alpha, b, &k, i) - y[i];
                let violates = (y[i] * e_i < -params.tolerance && alpha[i] < params.c)
                    || (y[i] * e_i > params.tolerance && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // pick a random j ≠ i
                let j = {
                    let r = rng.gen_range(0..n - 1);
                    if r >= i {
                        r + 1
                    } else {
                        r
                    }
                };
                let e_j = f(&alpha, b, &k, j) - y[j];
                let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    ((a_j_old - a_i_old).max(0.0), (params.c + a_j_old - a_i_old).min(params.c))
                } else {
                    ((a_i_old + a_j_old - params.c).max(0.0), (a_i_old + a_j_old).min(params.c))
                };
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
                a_j = a_j.clamp(lo, hi);
                if (a_j - a_j_old).abs() < 1e-7 {
                    continue;
                }
                let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
                alpha[i] = a_i;
                alpha[j] = a_j;
                let b1 = b
                    - e_i
                    - y[i] * (a_i - a_i_old) * k[i * n + i]
                    - y[j] * (a_j - a_j_old) * k[i * n + j];
                let b2 = b
                    - e_j
                    - y[i] * (a_i - a_i_old) * k[i * n + j]
                    - y[j] * (a_j - a_j_old) * k[j * n + j];
                b = if alpha[i] > 0.0 && alpha[i] < params.c {
                    b1
                } else if alpha[j] > 0.0 && alpha[j] < params.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }
        // keep only support vectors
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-10 {
                support_vectors.push(x[i].clone());
                coefficients.push(alpha[i] * y[i]);
            }
        }
        SvmModel { support_vectors, coefficients, bias: b, kernel: params.kernel }
    }

    /// The decision value `f(x)`; its sign is the predicted label.
    pub fn decision(&self, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, &c) in self.support_vectors.iter().zip(&self.coefficients) {
            s += c * self.kernel.eval(sv, x);
        }
        s
    }

    /// Predicted boolean label (`decision > 0`).
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    /// Number of support vectors retained.
    pub fn support_vector_count(&self) -> usize {
        self.support_vectors.len()
    }

    /// Misclassification rate on a labeled set.
    pub fn error_rate(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let wrong = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                self.predict(x) != (y > 0.0)
            })
            .count();
        wrong as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn linearly_separable(n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            // margin around the separator keeps the problem easy
            if (x + y).abs() < 0.2 {
                continue;
            }
            d.push(vec![x, y], x + y > 0.0);
        }
        d
    }

    #[test]
    fn learns_linear_separation() {
        let train = linearly_separable(150, 1);
        let test = linearly_separable(150, 2);
        let model =
            SvmModel::train(&train, &SvmParams { kernel: Kernel::Linear, ..SvmParams::default() });
        assert!(model.error_rate(&test) < 0.1, "error {}", model.error_rate(&test));
    }

    #[test]
    fn rbf_learns_xor() {
        // XOR is the classic non-linearly-separable case
        let mut train = Dataset::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..200 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            if x.abs() < 0.1 || y.abs() < 0.1 {
                continue;
            }
            train.push(vec![x, y], (x > 0.0) != (y > 0.0));
        }
        let model = SvmModel::train(
            &train,
            &SvmParams { kernel: Kernel::Rbf { gamma: 2.0 }, c: 10.0, ..SvmParams::default() },
        );
        assert!(model.error_rate(&train) < 0.1, "error {}", model.error_rate(&train));
    }

    #[test]
    fn random_labels_unlearnable() {
        // ~50 % error on fresh random labels regardless of training
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for i in 0..300 {
            let x: Vec<f64> = (0..8).map(|_| if rng.gen() { 1.0 } else { -1.0 }).collect();
            let label: bool = rng.gen();
            if i < 200 {
                train.push(x, label);
            } else {
                test.push(x, label);
            }
        }
        let model = SvmModel::train(&train, &SvmParams::default());
        let err = model.error_rate(&test);
        assert!((0.3..0.7).contains(&err), "error {err}");
    }

    #[test]
    fn kernel_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert!(rbf.eval(&[0.0], &[2.0]) < rbf.eval(&[0.0], &[1.0]));
        assert_eq!(Kernel::rbf_for_dimension(10), Kernel::Rbf { gamma: 0.1 });
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let _ = SvmModel::train(&Dataset::new(), &SvmParams::default());
    }
}
