//! Arbiter PUF baseline — the classic *learnable* strong PUF.
//!
//! Fig 10 contrasts the PPUF's model-building resilience with an arbiter
//! PUF of the same input length. The arbiter PUF follows the standard
//! additive delay model: stage `i` contributes a delay difference
//! `±w_i` depending on the challenge bit, so the response is
//! `sign(w · Φ(c))` with the parity feature map `Φ` — linearly separable,
//! which is exactly why SVMs break it with a few thousand CRPs
//! (Rührmair et al., CCS 2010).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::features::parity_features;

/// A simulated arbiter PUF instance (additive delay model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArbiterPuf {
    /// Per-stage delay-difference weights (length = stages + 1; the last
    /// entry is the arbiter offset).
    weights: Vec<f64>,
    /// Standard deviation of per-evaluation noise on the delay difference
    /// (0 = noiseless).
    noise: f64,
}

impl ArbiterPuf {
    /// Samples an instance with `stages` switch stages; stage delays are
    /// standard-normal (their scale cancels in the sign).
    pub fn sample<R: Rng + ?Sized>(stages: usize, rng: &mut R) -> Self {
        let weights = (0..=stages).map(|_| gaussian(rng)).collect();
        ArbiterPuf { weights, noise: 0.0 }
    }

    /// Adds evaluation noise (relative to the unit weight scale).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Number of challenge bits.
    pub fn stages(&self) -> usize {
        self.weights.len() - 1
    }

    /// Evaluates the response to a challenge.
    ///
    /// # Panics
    ///
    /// Panics if `challenge.len() != stages()`.
    pub fn respond<R: Rng + ?Sized>(&self, challenge: &[bool], rng: &mut R) -> bool {
        assert_eq!(challenge.len(), self.stages(), "wrong challenge length");
        let phi = parity_features(challenge);
        let mut delta: f64 = self.weights.iter().zip(&phi).map(|(w, p)| w * p).sum();
        if self.noise > 0.0 {
            delta += self.noise * gaussian(rng);
        }
        delta > 0.0
    }
}

/// Box–Muller standard normal (kept local so the crate has no dependency
/// on the analog substrate).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn responses_are_deterministic_without_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let puf = ArbiterPuf::sample(64, &mut rng);
        let challenge: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let a = puf.respond(&challenge, &mut rng);
        let b = puf.respond(&challenge, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn different_instances_differ() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p1 = ArbiterPuf::sample(64, &mut rng);
        let p2 = ArbiterPuf::sample(64, &mut rng);
        let mut differ = 0;
        for seed in 0..200u64 {
            let mut crng = ChaCha8Rng::seed_from_u64(seed);
            let challenge: Vec<bool> = (0..64).map(|_| crng.gen()).collect();
            if p1.respond(&challenge, &mut crng) != p2.respond(&challenge, &mut crng) {
                differ += 1;
            }
        }
        assert!((60..140).contains(&differ), "inter-device HD {differ}/200");
    }

    #[test]
    fn responses_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let puf = ArbiterPuf::sample(64, &mut rng);
        let ones = (0..500)
            .filter(|_| {
                let challenge: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
                puf.respond(&challenge, &mut rng)
            })
            .count();
        assert!((150..350).contains(&ones), "ones {ones}/500");
    }

    #[test]
    fn noise_flips_marginal_responses() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let puf = ArbiterPuf::sample(64, &mut rng).with_noise(0.5);
        let challenge: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        let responses: Vec<bool> = (0..200).map(|_| puf.respond(&challenge, &mut rng)).collect();
        let flips = responses.windows(2).filter(|w| w[0] != w[1]).count();
        // with noise, at least some evaluations should disagree for a
        // typical (finite-margin) challenge — allow the rare solid one
        let ones = responses.iter().filter(|&&b| b).count();
        assert!(flips > 0 || ones == 0 || ones == 200);
    }

    #[test]
    #[should_panic(expected = "wrong challenge length")]
    fn wrong_length_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let puf = ArbiterPuf::sample(8, &mut rng);
        let _ = puf.respond(&[true; 4], &mut rng);
    }
}
