//! Logistic-regression attacker trained with RProp.
//!
//! Logistic regression with resilient backpropagation is the workhorse of
//! the PUF modelling-attack literature (Rührmair et al., CCS 2010 — the
//! paper's citation \[18\] for model-building attacks): it is what breaks
//! arbiter PUFs and their XOR variants in practice. Including it makes
//! this crate's attacker strictly stronger than the paper's SVM+KNN
//! suite, which only makes the PPUF's measured resilience more
//! conservative.

use ppuf_telemetry::Recorder;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// RProp training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticParams {
    /// Full-batch iterations.
    pub iterations: usize,
    /// Initial per-weight step size.
    pub initial_step: f64,
    /// Step-size growth on gradient-sign agreement (η⁺).
    pub grow: f64,
    /// Step-size shrink on sign flip (η⁻).
    pub shrink: f64,
    /// Step-size clamp.
    pub max_step: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            iterations: 150,
            initial_step: 0.01,
            grow: 1.2,
            shrink: 0.5,
            max_step: 1.0,
            l2: 1e-4,
        }
    }
}

/// A trained logistic-regression model `P(y=1|x) = σ(⟨w, x⟩ + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticModel {
    /// Trains with full-batch RProp on the logistic loss.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train(data: &Dataset, params: &LogisticParams) -> LogisticModel {
        Self::train_with(data, params, None)
    }

    /// [`train`](Self::train) with telemetry: counts the epochs under
    /// `attack.logistic.epochs` and observes the mean logistic loss after
    /// every full-batch pass under `attack.logistic.loss`, so the recorded
    /// histogram summarizes the whole loss trajectory (first/last epoch =
    /// max/min for a converging run).
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train_traced(
        data: &Dataset,
        params: &LogisticParams,
        recorder: &dyn Recorder,
    ) -> LogisticModel {
        Self::train_with(data, params, Some(recorder))
    }

    /// Shared training loop; the loss trajectory is only computed when a
    /// recorder asks for it, so the untraced path pays nothing.
    fn train_with(
        data: &Dataset,
        params: &LogisticParams,
        recorder: Option<&dyn Recorder>,
    ) -> LogisticModel {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        let d = data.dimension();
        let mut w = vec![0.0f64; d + 1]; // last entry is the bias
        let mut step = vec![params.initial_step; d + 1];
        let mut prev_grad = vec![0.0f64; d + 1];
        let mut grad = vec![0.0f64; d + 1];
        for _ in 0..params.iterations {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut loss = 0.0f64;
            for i in 0..n {
                let (x, y) = data.sample(i);
                let y01 = if y > 0.0 { 1.0 } else { 0.0 };
                let z: f64 = w[..d].iter().zip(x).map(|(wj, xj)| wj * xj).sum::<f64>() + w[d];
                let p = sigmoid(z);
                let err = p - y01;
                for (gj, xj) in grad[..d].iter_mut().zip(x) {
                    *gj += err * xj;
                }
                grad[d] += err;
                if recorder.is_some() {
                    // cross-entropy, clamped away from ln(0)
                    let p = p.clamp(1e-12, 1.0 - 1e-12);
                    loss -= y01 * p.ln() + (1.0 - y01) * (1.0 - p).ln();
                }
            }
            let inv_n = 1.0 / n as f64;
            if let Some(r) = recorder {
                r.observe("attack.logistic.loss", loss * inv_n);
            }
            for j in 0..=d {
                grad[j] = grad[j] * inv_n + if j < d { params.l2 * w[j] } else { 0.0 };
                // RProp update
                let sign_product = grad[j] * prev_grad[j];
                if sign_product > 0.0 {
                    step[j] = (step[j] * params.grow).min(params.max_step);
                } else if sign_product < 0.0 {
                    step[j] *= params.shrink;
                }
                if grad[j] > 0.0 {
                    w[j] -= step[j];
                } else if grad[j] < 0.0 {
                    w[j] += step[j];
                }
                prev_grad[j] = grad[j];
            }
        }
        if let Some(r) = recorder {
            r.counter_add("attack.logistic.epochs", params.iterations as u64);
        }
        let bias = w[d];
        w.truncate(d);
        LogisticModel { weights: w, bias }
    }

    /// The predicted probability of label 1.
    pub fn probability(&self, x: &[f64]) -> f64 {
        let z: f64 = self.weights.iter().zip(x).map(|(wj, xj)| wj * xj).sum::<f64>() + self.bias;
        sigmoid(z)
    }

    /// Predicted boolean label.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.probability(x) > 0.5
    }

    /// Misclassification rate on a labeled set.
    pub fn error_rate(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let wrong = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                self.predict(x) != (y > 0.0)
            })
            .count();
        wrong as f64 / data.len() as f64
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use crate::harness::{collect_crps, ArbiterOracle};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn breaks_the_arbiter_puf() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let oracle = ArbiterOracle::new(ArbiterPuf::sample(64, &mut rng));
        let train = collect_crps(&oracle, 3000, &mut rng).expect("collects");
        let test = collect_crps(&oracle, 1000, &mut rng).expect("collects");
        let model = LogisticModel::train(&train, &LogisticParams::default());
        let err = model.error_rate(&test);
        assert!(err < 0.05, "arbiter error {err}");
    }

    #[test]
    fn probabilities_are_calibrated_on_easy_data() {
        let mut data = Dataset::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..400 {
            let x: f64 = rng.gen_range(-2.0..2.0);
            if x.abs() < 0.3 {
                continue;
            }
            data.push(vec![x], x > 0.0);
        }
        let model = LogisticModel::train(&data, &LogisticParams::default());
        assert!(model.probability(&[2.0]) > 0.9);
        assert!(model.probability(&[-2.0]) < 0.1);
        assert!(model.error_rate(&data) < 0.02);
    }

    #[test]
    fn random_labels_unlearnable() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for i in 0..500 {
            let x: Vec<f64> = (0..16).map(|_| if rng.gen() { 1.0 } else { -1.0 }).collect();
            let label: bool = rng.gen();
            if i < 350 {
                train.push(x, label);
            } else {
                test.push(x, label);
            }
        }
        let model = LogisticModel::train(&train, &LogisticParams::default());
        let err = model.error_rate(&test);
        assert!((0.3..0.7).contains(&err), "error {err}");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let _ = LogisticModel::train(&Dataset::new(), &LogisticParams::default());
    }
}
