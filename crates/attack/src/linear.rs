//! Linear SVM trained with Pegasos (stochastic subgradient descent).
//!
//! The simplified-SMO solver in [`crate::svm`] is faithful to the textbook
//! but converges slowly on large linearly-separable problems like the
//! arbiter PUF under parity features. Pegasos (Shalev-Shwartz et al.)
//! optimizes the same regularized hinge objective
//!
//! ```text
//! min_w  λ/2 ‖w‖² + 1/n Σ max(0, 1 − y_i ⟨w, x_i⟩)
//! ```
//!
//! in `O(epochs · n · d)` — it is what drives the arbiter baseline down to
//! the few-percent error the modelling-attack literature reports.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Pegasos hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearSvmParams {
    /// Regularization strength λ (smaller = harder margin).
    pub lambda: f64,
    /// Passes over the training set.
    pub epochs: usize,
    /// RNG seed for sample ordering.
    pub seed: u64,
}

impl Default for LinearSvmParams {
    fn default() -> Self {
        LinearSvmParams { lambda: 1e-4, epochs: 60, seed: 0x11ea }
    }
}

/// A trained linear classifier `sign(⟨w, x⟩ + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains with Pegasos.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train(data: &Dataset, params: &LinearSvmParams) -> LinearSvm {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        let d = data.dimension();
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        // averaged iterate for stability
        let mut w_avg = vec![0.0f64; d];
        let mut b_avg = 0.0f64;
        let mut averaged = 0u64;
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let mut t = 0u64;
        let warmup = (params.epochs * n / 2) as u64;
        for _ in 0..params.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let (x, y) = data.sample(i);
                let eta = 1.0 / (params.lambda * t as f64);
                let margin = y * (dot(&w, x) + b);
                for wj in w.iter_mut() {
                    *wj *= 1.0 - eta * params.lambda;
                }
                if margin < 1.0 {
                    for (wj, xj) in w.iter_mut().zip(x) {
                        *wj += eta * y * xj;
                    }
                    b += eta * y;
                }
                if t > warmup {
                    averaged += 1;
                    for (aj, wj) in w_avg.iter_mut().zip(&w) {
                        *aj += wj;
                    }
                    b_avg += b;
                }
            }
        }
        if averaged > 0 {
            let inv = 1.0 / averaged as f64;
            for aj in w_avg.iter_mut() {
                *aj *= inv;
            }
            LinearSvm { weights: w_avg, bias: b_avg * inv }
        } else {
            LinearSvm { weights: w, bias: b }
        }
    }

    /// The decision value `⟨w, x⟩ + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    /// Predicted boolean label.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Misclassification rate on a labeled set.
    pub fn error_rate(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let wrong = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                self.predict(x) != (y > 0.0)
            })
            .count();
        wrong as f64 / data.len() as f64
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterPuf;
    use crate::harness::{collect_crps, ArbiterOracle};

    #[test]
    fn breaks_the_arbiter_puf() {
        // the headline capability: few-percent error on the linear model
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let oracle = ArbiterOracle::new(ArbiterPuf::sample(64, &mut rng));
        let train = collect_crps(&oracle, 3000, &mut rng).expect("collects");
        let test = collect_crps(&oracle, 1000, &mut rng).expect("collects");
        let model = LinearSvm::train(&train, &LinearSvmParams::default());
        let err = model.error_rate(&test);
        assert!(err < 0.05, "arbiter error {err}");
    }

    #[test]
    fn separable_toy_problem() {
        let mut data = Dataset::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..300 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            if (x - y).abs() < 0.2 {
                continue;
            }
            data.push(vec![x, y], x > y);
        }
        let model = LinearSvm::train(&data, &LinearSvmParams::default());
        assert!(model.error_rate(&data) < 0.05);
        // the learned separator has opposite-sign weights (x − y direction)
        assert!(model.weights()[0] * model.weights()[1] < 0.0);
    }

    #[test]
    fn random_labels_unlearnable() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for i in 0..500 {
            let x: Vec<f64> = (0..16).map(|_| if rng.gen() { 1.0 } else { -1.0 }).collect();
            let label: bool = rng.gen();
            if i < 350 {
                train.push(x, label);
            } else {
                test.push(x, label);
            }
        }
        let model = LinearSvm::train(&train, &LinearSvmParams::default());
        let err = model.error_rate(&test);
        assert!((0.3..0.7).contains(&err), "error {err}");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let _ = LinearSvm::train(&Dataset::new(), &LinearSvmParams::default());
    }
}
