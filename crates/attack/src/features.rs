//! Feature maps from challenges to attack-model inputs.

/// Raw ±1 encoding of challenge bits (the natural features for the PPUF's
//  grid-control challenge).
pub fn sign_features(challenge: &[bool]) -> Vec<f64> {
    challenge.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect()
}

/// The arbiter-PUF parity feature map:
/// `Φ_i(c) = Π_{j=i}^{k−1} (1 − 2 c_j)` for `i = 0..k`, plus the constant
/// feature `Φ_k = 1`.
///
/// Under this map the arbiter PUF's response is a linear threshold
/// function — handing the attacker the representation in which the PUF is
/// easiest to learn (the standard modelling-attack setup).
pub fn parity_features(challenge: &[bool]) -> Vec<f64> {
    let k = challenge.len();
    let mut phi = vec![1.0f64; k + 1];
    // suffix products, built right to left
    for i in (0..k).rev() {
        let sign = if challenge[i] { -1.0 } else { 1.0 };
        phi[i] = sign * phi[i + 1];
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_features_map() {
        assert_eq!(sign_features(&[true, false, true]), vec![1.0, -1.0, 1.0]);
        assert!(sign_features(&[]).is_empty());
    }

    #[test]
    fn parity_features_structure() {
        // all-zero challenge: every suffix product is +1
        assert_eq!(parity_features(&[false, false]), vec![1.0, 1.0, 1.0]);
        // single one at the end flips every prefix feature
        assert_eq!(parity_features(&[false, true]), vec![-1.0, -1.0, 1.0]);
        // Φ_k (constant) is always 1
        let phi = parity_features(&[true, true, false, true]);
        assert_eq!(*phi.last().unwrap(), 1.0);
        assert_eq!(phi.len(), 5);
    }

    #[test]
    fn parity_features_suffix_products() {
        let c = [true, false, true];
        let phi = parity_features(&c);
        // Φ_2 = (1−2c_2) = −1 ; Φ_1 = (1)·(−1) = −1 ; Φ_0 = (−1)·(−1) = +1
        assert_eq!(phi, vec![1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn features_are_plus_minus_one() {
        let c: Vec<bool> = (0..32).map(|i| i % 5 == 0).collect();
        for v in parity_features(&c).iter().chain(sign_features(&c).iter()) {
            assert!(v.abs() == 1.0);
        }
    }
}
