//! The model-building attack harness (paper Fig 10).
//!
//! For each training-set size the harness collects CRPs from a response
//! oracle, trains the RBF-SVM and a sweep of KNN models
//! (`K = 1, 3, …, 21`), and reports the **minimum** prediction error on a
//! held-out test set — the paper's (attacker-favouring) convention.

use std::time::Instant;

use rand::Rng;

use ppuf_analog::variation::Environment;
use ppuf_core::batch::{BatchOptions, EvalBatch};
use ppuf_core::challenge::Challenge;
use ppuf_core::device::Ppuf;
use ppuf_core::PpufError;
use ppuf_telemetry::{Recorder, Span, NOOP};

use crate::arbiter::ArbiterPuf;
use crate::dataset::Dataset;
use crate::features::{parity_features, sign_features};
use crate::knn::KnnModel;
use crate::linear::{LinearSvm, LinearSvmParams};
use crate::logistic::{LogisticModel, LogisticParams};
use crate::svm::{Kernel, SvmModel, SvmParams};

/// Anything that answers bit-vector challenges with a response bit.
///
/// The harness is PUF-agnostic: the PPUF (via [`PpufOracle`]) and the
/// arbiter baseline (via [`ArbiterOracle`]) plug in here.
pub trait ResponseOracle {
    /// Challenge length in bits.
    fn challenge_bits(&self) -> usize;

    /// The oracle's response to a challenge.
    ///
    /// # Errors
    ///
    /// Implementations may fail (e.g. a metastable PPUF comparison); the
    /// harness skips failed queries.
    fn respond<R: Rng + ?Sized>(&self, bits: &[bool], rng: &mut R) -> Result<bool, PpufError>;

    /// Answers a whole block of challenges, one result per challenge.
    ///
    /// The default queries [`respond`](Self::respond) serially; oracles
    /// with a cheaper batched path (the PPUF, via [`EvalBatch`]) override
    /// it.
    fn respond_many<R: Rng + ?Sized>(
        &self,
        challenges: &[Vec<bool>],
        rng: &mut R,
    ) -> Vec<Result<bool, PpufError>> {
        challenges.iter().map(|bits| self.respond(bits, rng)).collect()
    }

    /// Maps a challenge to attack features (default: ±1 encoding).
    fn features(&self, bits: &[bool]) -> Vec<f64> {
        sign_features(bits)
    }
}

/// A PPUF exposed through its type-B control bits, with fixed terminals —
/// the Fig 10 setting that matches the arbiter PUF's input length.
#[derive(Debug)]
pub struct PpufOracle<'a> {
    executor: ppuf_core::PpufExecutor<'a>,
    template: Challenge,
    batch: EvalBatch,
}

impl<'a> PpufOracle<'a> {
    /// Wraps a device at nominal conditions, fixing the terminals of
    /// `template` and letting the attacker drive the control bits.
    pub fn new(ppuf: &'a Ppuf, template: Challenge) -> Self {
        PpufOracle {
            executor: ppuf.executor(Environment::NOMINAL),
            template,
            batch: EvalBatch::new(BatchOptions::default()),
        }
    }

    fn full_challenge(&self, bits: &[bool]) -> Challenge {
        let mut challenge = self.template.clone();
        challenge.control_bits = bits.to_vec();
        challenge
    }
}

impl ResponseOracle for PpufOracle<'_> {
    fn challenge_bits(&self) -> usize {
        self.template.control_bits.len()
    }

    fn respond<R: Rng + ?Sized>(&self, bits: &[bool], _rng: &mut R) -> Result<bool, PpufError> {
        self.executor.response(&self.full_challenge(bits))
    }

    fn respond_many<R: Rng + ?Sized>(
        &self,
        challenges: &[Vec<bool>],
        _rng: &mut R,
    ) -> Vec<Result<bool, PpufError>> {
        let full: Vec<Challenge> = challenges.iter().map(|b| self.full_challenge(b)).collect();
        let resolution = self.executor.device().config().comparator.resolution.value();
        let results = self.batch.run(std::slice::from_ref(&self.executor), &full);
        results
            .device_row(0)
            .iter()
            .map(|outcome| match outcome {
                Ok(o) => o.response.ok_or(PpufError::UnresolvableResponse {
                    difference: o.difference().value(),
                    resolution,
                }),
                Err(e) => Err(e.clone()),
            })
            .collect()
    }
}

/// The arbiter-PUF baseline oracle; uses parity features so the SVM sees
/// the linearly separable representation.
#[derive(Debug, Clone)]
pub struct ArbiterOracle {
    puf: ArbiterPuf,
}

impl ArbiterOracle {
    /// Wraps an arbiter PUF instance.
    pub fn new(puf: ArbiterPuf) -> Self {
        ArbiterOracle { puf }
    }
}

impl ResponseOracle for ArbiterOracle {
    fn challenge_bits(&self) -> usize {
        self.puf.stages()
    }

    fn respond<R: Rng + ?Sized>(&self, bits: &[bool], rng: &mut R) -> Result<bool, PpufError> {
        Ok(self.puf.respond(bits, rng))
    }

    fn features(&self, bits: &[bool]) -> Vec<f64> {
        parity_features(bits)
    }
}

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Held-out test-set size.
    pub test_size: usize,
    /// SMO training-set cap (kernel matrix is `O(cap²)` memory).
    pub svm_training_cap: usize,
    /// KNN vote counts to sweep (paper: 1, 3, …, 21).
    pub knn_ks: Vec<usize>,
    /// Soft-margin penalty for the SVM.
    pub svm_c: f64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            test_size: 500,
            svm_training_cap: 2000,
            knn_ks: (0..=10).map(|i| 2 * i + 1).collect(),
            svm_c: 1.0,
        }
    }
}

/// Outcome of one attack at one training size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackResult {
    /// CRPs observed by the attacker.
    pub observed_crps: usize,
    /// RBF-kernel SVM prediction error.
    pub svm_rbf_error: f64,
    /// Linear-kernel SVM prediction error.
    pub svm_linear_error: f64,
    /// Logistic-regression (RProp) prediction error.
    pub logistic_error: f64,
    /// Best SVM prediction error over both kernels.
    pub svm_error: f64,
    /// Best KNN prediction error over the K sweep.
    pub knn_error: f64,
}

impl AttackResult {
    /// The attacker's best model (the paper reports min over SVM and KNN;
    /// we additionally let the logistic-regression attacker compete, which
    /// only strengthens the attack).
    pub fn min_error(&self) -> f64 {
        self.svm_error.min(self.knn_error).min(self.logistic_error)
    }
}

/// Collects `count` random CRPs from an oracle (skipping failed queries).
///
/// # Errors
///
/// Propagates an oracle error only if it persists (more than half of the
/// attempted queries fail).
pub fn collect_crps<O: ResponseOracle, R: Rng + ?Sized>(
    oracle: &O,
    count: usize,
    rng: &mut R,
) -> Result<Dataset, PpufError> {
    collect_crps_traced(oracle, count, rng, &NOOP)
}

/// [`collect_crps`] with telemetry: counts collected CRPs and failed
/// queries (`attack.crps_collected` / `attack.crp_failures`), observes the
/// attacker's query throughput under `attack.crp_throughput_per_s`, and
/// times the collection as the `attack.collect_crps` span.
///
/// # Errors
///
/// Same as [`collect_crps`].
pub fn collect_crps_traced<O: ResponseOracle, R: Rng + ?Sized>(
    oracle: &O,
    count: usize,
    rng: &mut R,
    recorder: &dyn Recorder,
) -> Result<Dataset, PpufError> {
    /// Challenges queried per [`ResponseOracle::respond_many`] round —
    /// enough for a batched oracle to amortize its per-batch setup.
    const COLLECT_CHUNK: usize = 256;
    let _span = Span::enter(recorder, "attack.collect_crps");
    let started = Instant::now();
    let bits = oracle.challenge_bits();
    let mut data = Dataset::new();
    let mut failures = 0usize;
    while data.len() < count {
        let want = (count - data.len()).min(COLLECT_CHUNK);
        let challenges: Vec<Vec<bool>> =
            (0..want).map(|_| (0..bits).map(|_| rng.gen()).collect()).collect();
        for (challenge, result) in challenges.iter().zip(oracle.respond_many(&challenges, rng)) {
            match result {
                Ok(label) => data.push(oracle.features(challenge), label),
                Err(e) => {
                    failures += 1;
                    if failures > count.max(8) {
                        recorder.counter_add("attack.crp_failures", failures as u64);
                        recorder.warn(&format!(
                            "crp collection aborted after {failures} failures: {e}"
                        ));
                        return Err(e);
                    }
                }
            }
        }
    }
    recorder.counter_add("attack.crps_collected", data.len() as u64);
    recorder.counter_add("attack.crp_failures", failures as u64);
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed > 0.0 && count > 0 {
        recorder.observe("attack.crp_throughput_per_s", count as f64 / elapsed);
    }
    Ok(data)
}

/// Runs the full Fig 10 attack sweep against one oracle.
///
/// # Errors
///
/// Propagates persistent oracle failures.
pub fn evaluate_attack<O: ResponseOracle, R: Rng + ?Sized>(
    oracle: &O,
    training_sizes: &[usize],
    config: &AttackConfig,
    rng: &mut R,
) -> Result<Vec<AttackResult>, PpufError> {
    evaluate_attack_traced(oracle, training_sizes, config, rng, &NOOP)
}

/// [`evaluate_attack`] with telemetry: CRP collection reports through
/// [`collect_crps_traced`], each model family's training is timed as an
/// `attack.train.*` span, the logistic attacker's loss trajectory is
/// recorded via [`LogisticModel::train_traced`], and every per-size best
/// error lands in the `attack.best_error` histogram.
///
/// # Errors
///
/// Same as [`evaluate_attack`].
pub fn evaluate_attack_traced<O: ResponseOracle, R: Rng + ?Sized>(
    oracle: &O,
    training_sizes: &[usize],
    config: &AttackConfig,
    rng: &mut R,
    recorder: &dyn Recorder,
) -> Result<Vec<AttackResult>, PpufError> {
    let max_train = training_sizes.iter().copied().max().unwrap_or(0);
    let pool = collect_crps_traced(oracle, max_train, rng, recorder)?;
    let test = collect_crps_traced(oracle, config.test_size, rng, recorder)?;
    let mut results = Vec::with_capacity(training_sizes.len());
    for &size in training_sizes {
        recorder.counter_add("attack.training_runs", 1);
        let train = pool.subsampled(size, rng);
        let svm_train = train.subsampled(config.svm_training_cap, rng);
        let svm_error_for = |kernel: Kernel| {
            SvmModel::train(
                &svm_train,
                &SvmParams { c: config.svm_c, kernel, ..SvmParams::default() },
            )
            .error_rate(&test)
        };
        let svm_rbf_error = {
            let _span = Span::enter(recorder, "attack.train.svm_rbf");
            svm_error_for(Kernel::rbf_for_dimension(oracle.challenge_bits()))
        };
        // the linear side uses Pegasos on the *full* training set (no cap
        // needed: it is O(epochs · n · d)), which actually converges on
        // the arbiter PUF's linearly separable representation
        let svm_linear_error = {
            let _span = Span::enter(recorder, "attack.train.svm_linear");
            LinearSvm::train(&train, &LinearSvmParams::default()).error_rate(&test)
        };
        let logistic_error = {
            let _span = Span::enter(recorder, "attack.train.logistic");
            LogisticModel::train_traced(&train, &LogisticParams::default(), recorder)
                .error_rate(&test)
        };
        let knn_error = {
            let _span = Span::enter(recorder, "attack.train.knn");
            config
                .knn_ks
                .iter()
                .map(|&k| KnnModel::new(train.clone(), k).error_rate(&test))
                .fold(f64::INFINITY, f64::min)
        };
        let result = AttackResult {
            observed_crps: size,
            svm_rbf_error,
            svm_linear_error,
            logistic_error,
            svm_error: svm_rbf_error.min(svm_linear_error),
            knn_error,
        };
        recorder.observe("attack.best_error", result.min_error());
        results.push(result);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn arbiter_puf_is_learnable() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let oracle = ArbiterOracle::new(ArbiterPuf::sample(32, &mut rng));
        let config = AttackConfig { test_size: 200, ..AttackConfig::default() };
        let results = evaluate_attack(&oracle, &[200, 1000], &config, &mut rng).unwrap();
        // error drops with more CRPs and ends well below guessing
        assert!(results[1].min_error() < 0.1, "arbiter should be broken: {results:?}");
        assert!(results[1].svm_error <= results[0].svm_error + 0.05);
    }

    #[test]
    fn collect_crps_respects_count_and_dimension() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let oracle = ArbiterOracle::new(ArbiterPuf::sample(16, &mut rng));
        let data = collect_crps(&oracle, 50, &mut rng).unwrap();
        assert_eq!(data.len(), 50);
        assert_eq!(data.dimension(), 17); // parity features include Φ_k
    }

    #[test]
    fn min_error_picks_best_model() {
        let r = AttackResult {
            observed_crps: 10,
            svm_rbf_error: 0.4,
            svm_linear_error: 0.45,
            logistic_error: 0.3,
            svm_error: 0.4,
            knn_error: 0.2,
        };
        assert_eq!(r.min_error(), 0.2);
    }

    /// An oracle with pure random responses: nothing to learn.
    #[derive(Debug)]
    struct CoinOracle;

    impl ResponseOracle for CoinOracle {
        fn challenge_bits(&self) -> usize {
            16
        }
        fn respond<R: Rng + ?Sized>(&self, _bits: &[bool], rng: &mut R) -> Result<bool, PpufError> {
            Ok(rng.gen())
        }
    }

    #[test]
    fn traced_attack_records_throughput_epochs_and_loss() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let oracle = ArbiterOracle::new(ArbiterPuf::sample(16, &mut rng));
        let recorder = ppuf_telemetry::MemoryRecorder::new();
        let config = AttackConfig { test_size: 100, ..AttackConfig::default() };
        let results =
            evaluate_attack_traced(&oracle, &[150], &config, &mut rng, &recorder).unwrap();
        assert_eq!(results.len(), 1);
        // pool + test set
        assert_eq!(recorder.counter("attack.crps_collected"), 150 + 100);
        assert_eq!(recorder.span_stats("attack.collect_crps").unwrap().count, 2);
        assert!(recorder.histogram("attack.crp_throughput_per_s").unwrap().min > 0.0);
        assert_eq!(recorder.counter("attack.training_runs"), 1);
        assert_eq!(
            recorder.counter("attack.logistic.epochs"),
            LogisticParams::default().iterations as u64
        );
        let loss = recorder.histogram("attack.logistic.loss").unwrap();
        assert_eq!(loss.count as usize, LogisticParams::default().iterations);
        assert!(loss.min <= loss.max && loss.min > 0.0);
        for family in ["svm_rbf", "svm_linear", "logistic", "knn"] {
            let span = recorder.span_stats(&format!("attack.train.{family}")).unwrap();
            assert_eq!(span.count, 1, "{family}");
        }
        let best = recorder.histogram("attack.best_error").unwrap();
        assert_eq!(best.count, 1);
        assert!((best.max - results[0].min_error()).abs() < 1e-15);
    }

    #[test]
    fn random_oracle_stays_at_half_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = AttackConfig { test_size: 300, ..AttackConfig::default() };
        let results = evaluate_attack(&CoinOracle, &[500], &config, &mut rng).unwrap();
        assert!(
            (0.35..0.65).contains(&results[0].min_error()),
            "coin oracle must be unlearnable: {results:?}"
        );
    }
}
