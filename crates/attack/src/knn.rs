//! K-nearest-neighbour classifier — the paper's non-parametric attack.
//!
//! The paper sweeps `K = 1, 3, …, 21` and reports the best; the harness in
//! [`crate::harness`] does the same.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// A KNN classifier over a stored training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnModel {
    train: Dataset,
    k: usize,
}

impl KnnModel {
    /// Stores the training set for `k`-nearest-neighbour voting.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the dataset is empty.
    pub fn new(train: Dataset, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(!train.is_empty(), "cannot build KNN over an empty dataset");
        KnnModel { train, k }
    }

    /// The vote count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Majority vote of the `k` nearest training samples (squared
    /// Euclidean distance; on ±1 features this is Hamming distance up to
    /// scale).
    pub fn predict(&self, x: &[f64]) -> bool {
        let k = self.k.min(self.train.len());
        // partial selection of the k smallest distances
        let mut best: Vec<(f64, f64)> = Vec::with_capacity(k + 1);
        for i in 0..self.train.len() {
            let (xi, yi) = self.train.sample(i);
            let d2: f64 = x.iter().zip(xi).map(|(a, b)| (a - b) * (a - b)).sum();
            let pos = best.partition_point(|&(d, _)| d < d2);
            if pos < k {
                best.insert(pos, (d2, yi));
                best.truncate(k);
            }
        }
        let vote: f64 = best.iter().map(|&(_, y)| y).sum();
        vote > 0.0
    }

    /// Misclassification rate on a labeled set.
    pub fn error_rate(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let wrong = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.sample(i);
                self.predict(x) != (y > 0.0)
            })
            .count();
        wrong as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn clustered(n: usize, seed: u64) -> Dataset {
        // two Gaussian-ish blobs at ±(1,1)
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let label: bool = rng.gen();
            let center = if label { 1.0 } else { -1.0 };
            let x = center + rng.gen_range(-0.5..0.5);
            let y = center + rng.gen_range(-0.5..0.5);
            d.push(vec![x, y], label);
        }
        d
    }

    #[test]
    fn classifies_clusters() {
        let model = KnnModel::new(clustered(200, 1), 5);
        let test = clustered(100, 2);
        assert!(model.error_rate(&test) < 0.05);
    }

    #[test]
    fn k_one_memorizes_training_set() {
        let train = clustered(50, 3);
        let model = KnnModel::new(train.clone(), 1);
        assert_eq!(model.error_rate(&train), 0.0);
    }

    #[test]
    fn k_larger_than_set_is_majority_label() {
        let mut train = Dataset::new();
        train.push(vec![0.0], true);
        train.push(vec![1.0], true);
        train.push(vec![2.0], false);
        let model = KnnModel::new(train, 99);
        assert!(model.predict(&[10.0]));
    }

    #[test]
    fn random_labels_unlearnable() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for i in 0..400 {
            let x: Vec<f64> = (0..16).map(|_| if rng.gen() { 1.0 } else { -1.0 }).collect();
            let label: bool = rng.gen();
            if i < 300 {
                train.push(x, label);
            } else {
                test.push(x, label);
            }
        }
        let model = KnnModel::new(train, 7);
        let err = model.error_rate(&test);
        assert!((0.3..0.7).contains(&err), "error {err}");
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let mut d = Dataset::new();
        d.push(vec![0.0], true);
        let _ = KnnModel::new(d, 0);
    }
}
