//! Labeled datasets for model-building attacks.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A binary-labeled dataset: feature vectors with labels in `{−1, +1}`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one labeled sample (`label = true` maps to `+1`).
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension differs from previous samples.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), features.len(), "inconsistent feature dimension");
        }
        self.features.push(features);
        self.labels.push(if label { 1.0 } else { -1.0 });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dimension(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// The feature matrix.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The labels (`±1`).
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// One sample.
    pub fn sample(&self, i: usize) -> (&[f64], f64) {
        (&self.features[i], self.labels[i])
    }

    /// A uniformly subsampled copy with at most `max` samples (used to cap
    /// SMO training cost on large CRP sets).
    pub fn subsampled<R: Rng + ?Sized>(&self, max: usize, rng: &mut R) -> Dataset {
        if self.len() <= max {
            return self.clone();
        }
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.truncate(max);
        let mut out = Dataset::new();
        for i in indices {
            out.features.push(self.features[i].clone());
            out.labels.push(self.labels[i]);
        }
        out
    }

    /// Fraction of `+1` labels (for sanity-checking balance).
    pub fn positive_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&y| y > 0.0).count() as f64 / self.labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn push_and_shape() {
        let mut d = Dataset::new();
        assert!(d.is_empty());
        d.push(vec![1.0, -1.0], true);
        d.push(vec![0.5, 0.5], false);
        assert_eq!(d.len(), 2);
        assert_eq!(d.dimension(), 2);
        assert_eq!(d.labels(), &[1.0, -1.0]);
        assert_eq!(d.sample(1).1, -1.0);
        assert_eq!(d.positive_fraction(), 0.5);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimension")]
    fn dimension_mismatch_panics() {
        let mut d = Dataset::new();
        d.push(vec![1.0], true);
        d.push(vec![1.0, 2.0], false);
    }

    #[test]
    fn subsample_caps_size() {
        let mut d = Dataset::new();
        for i in 0..100 {
            d.push(vec![i as f64], i % 2 == 0);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let small = d.subsampled(10, &mut rng);
        assert_eq!(small.len(), 10);
        let same = d.subsampled(200, &mut rng);
        assert_eq!(same.len(), 100);
    }
}
