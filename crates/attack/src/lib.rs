//! Model-building attacks on PUFs (paper §5, Fig 10).
//!
//! From-scratch implementations of the paper's attack suite — an
//! SMO-trained SVM with RBF/linear kernels and a K-nearest-neighbour
//! classifier — plus the arbiter-PUF baseline they break and the harness
//! that measures prediction error against observed CRPs.
//!
//! # Example: break an arbiter PUF, fail against a coin
//!
//! ```
//! use ppuf_attack::arbiter::ArbiterPuf;
//! use ppuf_attack::harness::{evaluate_attack, ArbiterOracle, AttackConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ppuf_core::PpufError> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let oracle = ArbiterOracle::new(ArbiterPuf::sample(32, &mut rng));
//! let config = AttackConfig { test_size: 100, ..AttackConfig::default() };
//! let results = evaluate_attack(&oracle, &[500], &config, &mut rng)?;
//! assert!(results[0].min_error() < 0.2); // arbiter PUFs are learnable
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod dataset;
pub mod features;
pub mod harness;
pub mod knn;
pub mod linear;
pub mod logistic;
pub mod svm;

pub use arbiter::ArbiterPuf;
pub use dataset::Dataset;
pub use harness::{
    collect_crps, evaluate_attack, ArbiterOracle, AttackConfig, AttackResult, PpufOracle,
    ResponseOracle,
};
pub use knn::KnnModel;
pub use linear::{LinearSvm, LinearSvmParams};
pub use logistic::{LogisticModel, LogisticParams};
pub use svm::{Kernel, SvmModel, SvmParams};
