//! Property-based tests for the attack substrate: learners behave sanely
//! on arbitrary data, and the feature maps keep their algebraic structure.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use ppuf_attack::features::{parity_features, sign_features};
use ppuf_attack::{
    ArbiterPuf, Dataset, Kernel, KnnModel, LinearSvm, LinearSvmParams, LogisticModel,
    LogisticParams, SvmModel, SvmParams,
};

fn labeled_points(max: usize) -> impl Strategy<Value = Vec<(Vec<f64>, bool)>> {
    proptest::collection::vec((proptest::collection::vec(-2.0f64..2.0, 4), any::<bool>()), 8..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn error_rates_are_probabilities(points in labeled_points(60)) {
        let mut data = Dataset::new();
        for (x, y) in &points {
            data.push(x.clone(), *y);
        }
        let svm = SvmModel::train(&data, &SvmParams::default());
        let knn = KnnModel::new(data.clone(), 3);
        let lin = LinearSvm::train(&data, &LinearSvmParams { epochs: 5, ..Default::default() });
        let logi = LogisticModel::train(
            &data,
            &LogisticParams { iterations: 10, ..Default::default() },
        );
        for err in [
            svm.error_rate(&data),
            knn.error_rate(&data),
            lin.error_rate(&data),
            logi.error_rate(&data),
        ] {
            prop_assert!((0.0..=1.0).contains(&err));
        }
    }

    #[test]
    fn knn_k1_memorizes_distinct_points(points in labeled_points(40)) {
        // deduplicate by feature vector: 1-NN must reproduce the training
        // labels exactly when no two samples share features
        let mut data = Dataset::new();
        let mut seen: Vec<Vec<f64>> = Vec::new();
        for (x, y) in &points {
            if !seen.contains(x) {
                seen.push(x.clone());
                data.push(x.clone(), *y);
            }
        }
        let knn = KnnModel::new(data.clone(), 1);
        prop_assert_eq!(knn.error_rate(&data), 0.0);
    }

    #[test]
    fn parity_features_flip_structure(bits in proptest::collection::vec(any::<bool>(), 1..32)) {
        let phi = parity_features(&bits);
        prop_assert_eq!(phi.len(), bits.len() + 1);
        prop_assert_eq!(*phi.last().unwrap(), 1.0);
        // flipping bit i negates features 0..=i and leaves the rest alone
        for i in 0..bits.len() {
            let mut flipped = bits.clone();
            flipped[i] = !flipped[i];
            let phi2 = parity_features(&flipped);
            for j in 0..phi.len() {
                if j <= i {
                    prop_assert_eq!(phi2[j], -phi[j]);
                } else {
                    prop_assert_eq!(phi2[j], phi[j]);
                }
            }
        }
    }

    #[test]
    fn sign_features_preserve_hamming_distance(
        a in proptest::collection::vec(any::<bool>(), 1..64),
        flips in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let len = a.len().min(flips.len());
        let a = &a[..len];
        let b: Vec<bool> =
            a.iter().zip(&flips[..len]).map(|(x, f)| x ^ f).collect();
        let hd = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        let fa = sign_features(a);
        let fb = sign_features(&b);
        let d2: f64 = fa.iter().zip(&fb).map(|(x, y)| (x - y) * (x - y)).sum();
        // each differing ±1 coordinate contributes exactly 4
        prop_assert!((d2 - 4.0 * hd as f64).abs() < 1e-9);
    }

    #[test]
    fn rbf_kernel_is_a_similarity(x in proptest::collection::vec(-3.0f64..3.0, 5),
                                  z in proptest::collection::vec(-3.0f64..3.0, 5),
                                  gamma in 0.01f64..2.0) {
        let k = Kernel::Rbf { gamma };
        let kxz = k.eval(&x, &z);
        prop_assert!((0.0..=1.0).contains(&kxz));
        prop_assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
        prop_assert!((kxz - k.eval(&z, &x)).abs() < 1e-12); // symmetry
    }

    #[test]
    fn arbiter_instances_have_balanced_disagreement(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = ArbiterPuf::sample(32, &mut rng);
        let b = ArbiterPuf::sample(32, &mut rng);
        let mut differ = 0;
        for i in 0..128u64 {
            let mut crng = ChaCha8Rng::seed_from_u64(seed ^ (i + 1));
            let challenge: Vec<bool> = (0..32).map(|_| rand::Rng::gen(&mut crng)).collect();
            if a.respond(&challenge, &mut crng) != b.respond(&challenge, &mut crng) {
                differ += 1;
            }
        }
        // inter-device HD concentrated around 0.5
        prop_assert!((20..=108).contains(&differ), "differ {differ}/128");
    }
}
