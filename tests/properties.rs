//! Cross-crate property-based tests: the paper's structural invariants
//! hold for arbitrary devices and challenges.

use proptest::prelude::*;

use maxflow_ppuf::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_device() -> impl Strategy<Value = (Ppuf, u64)> {
    ((4usize..10), (1usize..4), any::<u64>(), any::<u64>()).prop_map(
        |(nodes, grid, seed, challenge_seed)| {
            let grid = grid.min(nodes);
            (Ppuf::generate(PpufConfig::paper(nodes, grid), seed).expect("valid"), challenge_seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn device_flow_is_feasible_and_maximal((ppuf, cseed) in any_device()) {
        let mut rng = ChaCha8Rng::seed_from_u64(cseed);
        let challenge = ppuf.challenge_space().random(&mut rng);
        let executor = ppuf.executor(Environment::NOMINAL);
        let detailed = executor.execute_flow_detailed(&challenge).expect("solves");
        for (side, flow) in [(NetworkSide::A, &detailed.flow_a), (NetworkSide::B, &detailed.flow_b)] {
            let net = executor.flow_network(side, &challenge).expect("valid");
            prop_assert!(flow.check_feasible(&net, 1e-9).expect("shape").is_feasible());
            let residual = ResidualGraph::new(&net, flow, 1e-12).expect("shape");
            prop_assert!(residual.certifies_max_flow());
            let cut = MinCut::from_max_flow(&net, flow, 1e-12).expect("shape");
            prop_assert!(cut.certifies(flow.value(), 1e-9));
        }
    }

    #[test]
    fn response_bounded_by_terminal_cuts((ppuf, cseed) in any_device()) {
        let mut rng = ChaCha8Rng::seed_from_u64(cseed);
        let challenge = ppuf.challenge_space().random(&mut rng);
        let executor = ppuf.executor(Environment::NOMINAL);
        let out = executor.execute_flow(&challenge).expect("solves");
        for (side, current) in [(NetworkSide::A, out.current_a), (NetworkSide::B, out.current_b)] {
            let net = executor.flow_network(side, &challenge).expect("valid");
            prop_assert!(current.value() <= net.out_capacity(challenge.source) + 1e-12);
            prop_assert!(current.value() <= net.in_capacity(challenge.sink) + 1e-12);
            prop_assert!(current.value() >= 0.0);
        }
    }

    #[test]
    fn responses_deterministic_across_executors((ppuf, cseed) in any_device()) {
        let mut rng = ChaCha8Rng::seed_from_u64(cseed);
        let challenge = ppuf.challenge_space().random(&mut rng);
        let a = ppuf.executor(Environment::NOMINAL).execute_flow(&challenge).expect("solves");
        let b = ppuf.executor(Environment::NOMINAL).execute_flow(&challenge).expect("solves");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn public_model_is_device_truth_at_nominal((ppuf, cseed) in any_device()) {
        let model = ppuf.public_model().expect("publishable");
        let mut rng = ChaCha8Rng::seed_from_u64(cseed);
        let challenge = ppuf.challenge_space().random(&mut rng);
        let device = ppuf
            .executor(Environment::NOMINAL)
            .execute_flow(&challenge)
            .expect("solves");
        let public = model.simulate(&challenge, &Dinic::new()).expect("solves");
        prop_assert!((device.current_a.value() - public.current_a.value()).abs() < 1e-15);
        prop_assert!((device.current_b.value() - public.current_b.value()).abs() < 1e-15);
    }

    #[test]
    fn challenge_grid_bits_control_capacity(
        (ppuf, cseed) in any_device(),
        nodes in 4usize..10,
    ) {
        // 1. on any fabricated device, the challenge bits actually move
        //    capacities (the grid control is wired through)
        let mut rng = ChaCha8Rng::seed_from_u64(cseed);
        let mut challenge = ppuf.challenge_space().random(&mut rng);
        let executor = ppuf.executor(Environment::NOMINAL);
        challenge.control_bits.iter_mut().for_each(|b| *b = false);
        let all0 = executor.flow_network(NetworkSide::A, &challenge).expect("valid");
        challenge.control_bits.iter_mut().for_each(|b| *b = true);
        let all1 = executor.flow_network(NetworkSide::A, &challenge).expect("valid");
        prop_assert!((all0.total_capacity() - all1.total_capacity()).abs() > 1e-12);

        // 2. on a *nominal* (variation-free) device the direction is
        //    fixed: the input-0 bias has the larger capacity under the
        //    paper's voltage settings (per-device variation can invert it)
        let mut config = PpufConfig::paper(nodes, 2);
        config.process = maxflow_ppuf::analog::variation::ProcessVariation {
            sigma_vth: maxflow_ppuf::analog::units::Volts(0.0),
            ..maxflow_ppuf::analog::variation::ProcessVariation::new()
        };
        let nominal = Ppuf::generate(config, 0).expect("valid");
        let mut challenge = nominal.challenge_space().random(&mut rng);
        let executor = nominal.executor(Environment::NOMINAL);
        challenge.control_bits.iter_mut().for_each(|b| *b = false);
        let all0 = executor.flow_network(NetworkSide::A, &challenge).expect("valid");
        challenge.control_bits.iter_mut().for_each(|b| *b = true);
        let all1 = executor.flow_network(NetworkSide::A, &challenge).expect("valid");
        prop_assert!(all0.total_capacity() > all1.total_capacity());
    }
}
