//! End-to-end integration: device ↔ public model ↔ protocols, spanning
//! all four crates through the facade.

use maxflow_ppuf::core::protocol::{feedback, prove, Verifier};
use maxflow_ppuf::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn device(nodes: usize, grid: usize, seed: u64) -> Ppuf {
    Ppuf::generate(PpufConfig::paper(nodes, grid), seed).expect("valid configuration")
}

#[test]
fn device_and_public_model_agree_on_responses() {
    let ppuf = device(12, 3, 1);
    let model = ppuf.public_model().expect("publishable");
    let executor = ppuf.executor(Environment::NOMINAL);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut checked = 0;
    for _ in 0..25 {
        let challenge = ppuf.challenge_space().random(&mut rng);
        let dev = executor.execute_flow(&challenge).expect("device answers");
        let sim = model.simulate(&challenge, &Dinic::new()).expect("model answers");
        assert_eq!(dev.response, sim.response, "challenge {challenge:?}");
        checked += 1;
    }
    assert_eq!(checked, 25);
}

#[test]
fn analog_execution_matches_simulation_within_one_percent() {
    // the Fig 6 claim as an integration invariant
    let ppuf = device(10, 2, 3);
    let model = ppuf.public_model().expect("publishable");
    let executor = ppuf.executor(Environment::NOMINAL);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for _ in 0..5 {
        let challenge = ppuf.challenge_space().random(&mut rng);
        for side in NetworkSide::BOTH {
            let analog =
                executor.execute_network(side, &challenge).expect("analog converges").value();
            let net = model.flow_network(side, &challenge).expect("valid");
            let flow = Dinic::new()
                .max_flow(&net, challenge.source, challenge.sink)
                .expect("solvable")
                .value();
            assert!(
                (analog - flow).abs() / analog < 0.01,
                "{side:?}: analog {analog} vs max-flow {flow}"
            );
        }
    }
}

#[test]
fn all_solvers_agree_on_ppuf_instances() {
    let ppuf = device(9, 3, 5);
    let executor = ppuf.executor(Environment::NOMINAL);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let challenge = ppuf.challenge_space().random(&mut rng);
    let net = executor.flow_network(NetworkSide::A, &challenge).expect("valid challenge");
    let (s, t) = (challenge.source, challenge.sink);
    let dinic = Dinic::new().max_flow(&net, s, t).expect("solves").value();
    let ek = EdmondsKarp::new().max_flow(&net, s, t).expect("solves").value();
    let pr = PushRelabel::new().max_flow(&net, s, t).expect("solves").value();
    let par = ParallelPushRelabel::with_threads(2)
        .expect("threads ok")
        .max_flow(&net, s, t)
        .expect("solves")
        .value();
    for (name, v) in [("edmonds-karp", ek), ("push-relabel", pr), ("parallel", par)] {
        assert!((v - dinic).abs() < 1e-12, "{name}: {v} vs dinic {dinic}");
    }
}

#[test]
fn approximation_error_bound_exceeds_the_response_margin() {
    // the paper's argument for bounding the ESG over approximate
    // algorithms: the comparator decides on an |I_A − I_B| margin that is
    // *smaller* than the ε-approximation slack, so an ε-approximate
    // attacker cannot guarantee the response bit — it must solve (nearly)
    // exactly. We verify both halves: (a) the approximate value respects
    // its guarantee, and (b) the guarantee band swallows the margin.
    let ppuf = device(12, 3, 7);
    let model = ppuf.public_model().expect("publishable");
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let exact = Dinic::new();
    let eps = 0.2;
    let sloppy = ApproxMaxFlow::new(eps).expect("valid epsilon");
    let mut margin_inside_band = 0;
    for _ in 0..20 {
        let challenge = ppuf.challenge_space().random(&mut rng);
        let e = model.simulate(&challenge, &exact).expect("solves");
        let a = model.simulate(&challenge, &sloppy).expect("solves");
        for (exact_v, approx_v) in [(e.current_a, a.current_a), (e.current_b, a.current_b)] {
            assert!(approx_v.value() <= exact_v.value() + 1e-12);
            assert!(approx_v.value() >= exact_v.value() / (1.0 + eps) - 1e-12);
        }
        let margin = (e.current_a.value() - e.current_b.value()).abs();
        let band = eps * e.current_a.value().max(e.current_b.value());
        if margin < band {
            margin_inside_band += 1;
        }
    }
    assert!(
        margin_inside_band > 10,
        "the ε band should swallow most response margins, got {margin_inside_band}/20"
    );
}

#[test]
fn authentication_accepts_device_rejects_forgery() {
    let ppuf = device(10, 2, 9);
    let model = ppuf.public_model().expect("publishable");
    let executor = ppuf.executor(Environment::NOMINAL);
    let verifier = Verifier::new(model).with_threads(2);
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    for _ in 0..5 {
        let challenge = ppuf.challenge_space().random(&mut rng);
        let answer = prove(&executor, &challenge).expect("device proves");
        let report = verifier.verify(&challenge, &answer).expect("verifies");
        assert!(report.accepted());
        let mut forged = answer;
        forged.response = !forged.response;
        assert!(!verifier.verify(&challenge, &forged).expect("verifies").accepted());
    }
}

#[test]
fn feedback_chain_device_vs_model() {
    let ppuf = device(10, 2, 11);
    let model = ppuf.public_model().expect("publishable");
    let executor = ppuf.executor(Environment::NOMINAL);
    let space = ppuf.challenge_space();
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let first = space.random(&mut rng);
    let chain =
        feedback::run_chain(&space, first.clone(), 6, |c| executor.response(c)).expect("runs");
    assert_eq!(chain.len(), 6);
    // the public model replays the whole chain successfully (Fig 6
    // equivalence transfers to chained responses)
    let ok =
        feedback::verify_chain(&space, &first, &chain, |c| model.response(c)).expect("replays");
    assert!(ok);
}

#[test]
fn environment_variation_flips_few_bits() {
    // intra-class stability: across the paper's environment corners the
    // response vector changes in only a small fraction of positions
    let ppuf = device(12, 3, 13);
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let challenges: Vec<Challenge> =
        (0..40).map(|_| ppuf.challenge_space().random(&mut rng)).collect();
    let bits = |env: Environment| -> Vec<bool> {
        let executor = ppuf.executor(env);
        challenges
            .iter()
            .map(|c| {
                let out = executor.execute_flow(c).expect("solves");
                out.current_a.value() > out.current_b.value()
            })
            .collect()
    };
    let nominal = bits(Environment::NOMINAL);
    let hot = bits(Environment::new(1.1, Celsius(80.0)));
    let flips = nominal.iter().zip(&hot).filter(|(a, b)| a != b).count();
    assert!(
        flips * 4 <= challenges.len(),
        "intra-class flips too high: {flips}/{}",
        challenges.len()
    );
}

#[test]
fn different_devices_disagree_on_many_bits() {
    // inter-class uniqueness across independently fabricated devices
    let a = device(12, 3, 100);
    let b = device(12, 3, 101);
    let mut rng = ChaCha8Rng::seed_from_u64(15);
    let space = a.challenge_space();
    let challenges: Vec<Challenge> = (0..60).map(|_| space.random(&mut rng)).collect();
    let exec_a = a.executor(Environment::NOMINAL);
    let exec_b = b.executor(Environment::NOMINAL);
    let mut distance = 0;
    for c in &challenges {
        let ra = exec_a.execute_flow(c).expect("solves");
        let rb = exec_b.execute_flow(c).expect("solves");
        if (ra.current_a.value() > ra.current_b.value())
            != (rb.current_a.value() > rb.current_b.value())
        {
            distance += 1;
        }
    }
    let frac = distance as f64 / challenges.len() as f64;
    assert!((0.25..=0.75).contains(&frac), "inter-class HD {frac}");
}
